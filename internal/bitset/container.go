package bitset

import (
	"fmt"
	"math/bits"
	"slices"
)

// The hybrid tidset layout splits the id universe into aligned chunks of
// 2^16 ids ("containers", after the roaring bitmap design) and lets each
// chunk pick the encoding that fits its local density:
//
//   - array:  a sorted []uint16 of the ids present — wins when the chunk
//     holds at most a few thousand ids (sparse focal subsets over large
//     tables, the common production case);
//   - bitmap: a fixed 1024-word dense bitmap — wins past ~6% density,
//     and is bit-for-bit the pre-hybrid dense representation;
//   - run:    sorted disjoint inclusive [start,last] intervals — wins for
//     clustered data (records arrive ordered, so per-item tidsets of
//     values correlated with arrival order are long runs) and for the
//     nearly-full sets Fill and RegionTidset produce.
//
// Containers promote (array→bitmap) past arrayMaxCard and demote
// (bitmap→array) at arrayOptCard on mutation — a hysteresis band, and
// time-aware: see the constants below; run containers are produced by Optimize
// (and by Fill) and fall back to array/bitmap when point-mutated. The
// AND/ANDNOT/OR/AndCount kernels below are specialized per container
// pair so the hot SELECT/ELIMINATE/VERIFY intersections never touch the
// zero words a dense layout would stream through.

const (
	// ctrBits is the id span of one container.
	ctrBits = 1 << 16
	// ctrWords is the dense word count of a bitmap container.
	ctrWords = ctrBits / wordBits
	// arrayMaxCard is the largest cardinality an array container may
	// hold: above it a bitmap (8 KiB) is smaller than the array would
	// be. Point adds promote only past this bound, so mutation-heavy
	// sets get a hysteresis band instead of thrashing at a single
	// threshold.
	arrayMaxCard = 4096
	// arrayOptCard and runOptUnits are the time-aware repack bounds
	// used by normalize and optimize. A bitmap container costs ~1024
	// word-parallel operations per kernel regardless of density, while
	// array and run kernels pay an element-at-a-time, branchy walk — so
	// a compressed encoding must be several times smaller than the
	// bitmap before it also wins on time. Arrays are kept (or demoted
	// to) only at ≤ 1/4 of the bitmap's bytes; runs, whose interval
	// walk is the branchiest kernel, only at ≤ 1/32.
	arrayOptCard = ctrWords     // 1024 ids = 2 KiB, 1/4 of a bitmap
	runOptUnits  = ctrWords / 8 // 128 uint16s = 64 runs, 1/32 of a bitmap
)

// Container kinds.
const (
	emptyCtr  uint8 = iota // no ids; both payload slices nil
	arrayCtr               // a: sorted unique ids
	bitmapCtr              // b: ctrWords words, card cached
	runCtr                 // a: interleaved inclusive [start,last] pairs
)

// container is one 2^16-id chunk of a Set. The struct is a tagged union
// kept flat (no interface) so a []container is a single contiguous
// allocation and the kernels dispatch on a byte.
type container struct {
	kind uint8
	card int32    // cardinality, maintained for every kind
	a    []uint16 // arrayCtr ids, or runCtr [start,last] pairs
	b    []uint64 // bitmapCtr words
}

// ctrOverheadBytes approximates the fixed in-memory size of the
// container struct itself (tag + cardinality + two slice headers).
const ctrOverheadBytes = 8 + 2*24

func (c *container) bytes() int {
	return ctrOverheadBytes + 2*len(c.a) + 8*len(c.b)
}

func (c *container) clone() container {
	out := container{kind: c.kind, card: c.card}
	if c.a != nil {
		out.a = append([]uint16(nil), c.a...)
	}
	if c.b != nil {
		out.b = append([]uint64(nil), c.b...)
	}
	return out
}

// setEmpty resets the container to the canonical empty form.
func (c *container) setEmpty() {
	c.kind, c.card, c.a, c.b = emptyCtr, 0, nil, nil
}

// --- conversions -----------------------------------------------------

// toBitmap converts any kind to bitmap form in place.
func (c *container) toBitmap() {
	if c.kind == bitmapCtr {
		return
	}
	b := make([]uint64, ctrWords)
	switch c.kind {
	case arrayCtr:
		for _, v := range c.a {
			b[v>>6] |= 1 << (v & 63)
		}
	case runCtr:
		for i := 0; i < len(c.a); i += 2 {
			setWordRange(b, int(c.a[i]), int(c.a[i+1]))
		}
	}
	c.kind, c.a, c.b = bitmapCtr, nil, b
}

// toArray converts any kind to array form in place. The caller is
// responsible for only doing this at reasonable cardinalities.
func (c *container) toArray() {
	switch c.kind {
	case arrayCtr:
		return
	case emptyCtr:
		c.kind = arrayCtr
		return
	case runCtr:
		a := make([]uint16, 0, c.card)
		for i := 0; i < len(c.a); i += 2 {
			for v := int(c.a[i]); v <= int(c.a[i+1]); v++ {
				a = append(a, uint16(v))
			}
		}
		c.kind, c.a = arrayCtr, a
	case bitmapCtr:
		a := make([]uint16, 0, c.card)
		for wi, w := range c.b {
			for w != 0 {
				tz := bits.TrailingZeros64(w)
				a = append(a, uint16(wi<<6+tz))
				w &= w - 1
			}
		}
		c.kind, c.a, c.b = arrayCtr, a, nil
	}
}

// toRuns converts any kind to run form in place.
func (c *container) toRuns() {
	switch c.kind {
	case runCtr, emptyCtr:
		return
	case arrayCtr:
		runs := make([]uint16, 0, 8)
		for i := 0; i < len(c.a); {
			j := i + 1
			for j < len(c.a) && c.a[j] == c.a[j-1]+1 {
				j++
			}
			runs = append(runs, c.a[i], c.a[j-1])
			i = j
		}
		c.kind, c.a = runCtr, runs
	case bitmapCtr:
		runs := make([]uint16, 0, 8)
		i := nextSetBit(c.b, 0)
		for i >= 0 {
			j := nextClearBit(c.b, i+1)
			if j < 0 {
				runs = append(runs, uint16(i), uint16(ctrBits-1))
				break
			}
			runs = append(runs, uint16(i), uint16(j-1))
			i = nextSetBit(c.b, j+1)
		}
		c.kind, c.a, c.b = runCtr, runs, nil
	}
}

// nextSetBit returns the index of the first set bit at or after from, or
// -1 when none remains.
func nextSetBit(b []uint64, from int) int {
	if from >= ctrBits {
		return -1
	}
	wi := from >> 6
	w := b[wi] >> (from & 63) << (from & 63)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(b) {
			return -1
		}
		w = b[wi]
	}
}

// nextClearBit returns the index of the first clear bit at or after
// from, or -1 when the rest of the container is all ones.
func nextClearBit(b []uint64, from int) int {
	if from >= ctrBits {
		return -1
	}
	wi := from >> 6
	w := ^b[wi] >> (from & 63) << (from & 63)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(b) {
			return -1
		}
		w = ^b[wi]
	}
}

// normalize enforces the per-mode representation policy after an
// operation changed the container's content: hybrid containers promote
// past arrayMaxCard and demote at arrayOptCard, dense (non-hybrid) containers stay
// bitmaps so the layout matches the pre-hybrid dense Set exactly.
func (c *container) normalize(hybrid bool) {
	if !hybrid {
		c.toBitmap()
		return
	}
	switch {
	case c.card == 0:
		c.setEmpty()
	case c.kind == arrayCtr && c.card > arrayMaxCard:
		c.toBitmap()
	case c.kind == bitmapCtr && c.card <= arrayOptCard:
		c.toArray()
	}
}

// optimize re-encodes the container in its cheapest form: run when the
// interval list is the smallest encoding, otherwise array or bitmap by
// cardinality. Dense mode pins everything to bitmap.
func (c *container) optimize(hybrid bool) {
	if !hybrid {
		c.toBitmap()
		return
	}
	if c.card == 0 {
		c.setEmpty()
		return
	}
	runCost := 2 * c.numRuns() // uint16 units
	arrayCost := int(c.card)
	switch {
	case runCost <= runOptUnits && runCost < arrayCost:
		c.toRuns()
	case arrayCost <= arrayOptCard:
		c.toArray()
	default:
		c.toBitmap()
	}
}

// numRuns counts the maximal intervals of consecutive ids.
func (c *container) numRuns() int {
	switch c.kind {
	case emptyCtr:
		return 0
	case runCtr:
		return len(c.a) / 2
	case arrayCtr:
		n := 0
		for i := range c.a {
			if i == 0 || c.a[i] != c.a[i-1]+1 {
				n++
			}
		}
		return n
	default: // bitmap: count 0→1 transitions, carrying across words
		n := 0
		carry := uint64(0)
		for _, w := range c.b {
			n += bits.OnesCount64(w &^ (w<<1 | carry))
			carry = w >> 63
		}
		return n
	}
}

// --- point operations ------------------------------------------------

func (c *container) contains(v uint16) bool {
	switch c.kind {
	case emptyCtr:
		return false
	case arrayCtr:
		_, ok := slices.BinarySearch(c.a, v)
		return ok
	case bitmapCtr:
		return c.b[v>>6]&(1<<(v&63)) != 0
	default:
		return runIndexOf(c.a, v) >= 0
	}
}

// runIndexOf returns the pair index of the run containing v, or -1.
func runIndexOf(runs []uint16, v uint16) int {
	lo, hi := 0, len(runs)/2
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v < runs[2*mid]:
			hi = mid
		case v > runs[2*mid+1]:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// add inserts v, reporting whether it was absent. A run container is
// converted first (runs are a read-optimized encoding; point mutation
// falls back to array/bitmap and Optimize can re-pick runs later).
func (c *container) add(v uint16, hybrid bool) bool {
	if c.kind == runCtr {
		if runIndexOf(c.a, v) >= 0 {
			return false
		}
		if c.card >= arrayOptCard || !hybrid {
			c.toBitmap()
		} else {
			c.toArray()
		}
	}
	switch c.kind {
	case emptyCtr:
		if hybrid {
			c.kind, c.a = arrayCtr, append(c.a, v)
		} else {
			c.toBitmap()
			c.b[v>>6] |= 1 << (v & 63)
		}
		c.card = 1
		return true
	case arrayCtr:
		i, ok := slices.BinarySearch(c.a, v)
		if ok {
			return false
		}
		c.a = slices.Insert(c.a, i, v)
		c.card++
		if c.card > arrayMaxCard {
			c.toBitmap()
		}
		return true
	default: // bitmap
		if c.b[v>>6]&(1<<(v&63)) != 0 {
			return false
		}
		c.b[v>>6] |= 1 << (v & 63)
		c.card++
		return true
	}
}

// remove deletes v, reporting whether it was present.
func (c *container) remove(v uint16, hybrid bool) bool {
	switch c.kind {
	case emptyCtr:
		return false
	case runCtr:
		if runIndexOf(c.a, v) < 0 {
			return false
		}
		if c.card > arrayOptCard || !hybrid {
			c.toBitmap()
		} else {
			c.toArray()
		}
		return c.remove(v, hybrid)
	case arrayCtr:
		i, ok := slices.BinarySearch(c.a, v)
		if !ok {
			return false
		}
		c.a = slices.Delete(c.a, i, i+1)
		c.card--
		if c.card == 0 && hybrid {
			c.setEmpty()
		}
		return true
	default: // bitmap
		if c.b[v>>6]&(1<<(v&63)) == 0 {
			return false
		}
		c.b[v>>6] &^= 1 << (v & 63)
		c.card--
		if hybrid && c.card <= arrayOptCard {
			c.toArray()
		}
		return true
	}
}

// --- word-range helpers ----------------------------------------------

// setWordRange sets bits [lo,hi] (inclusive) in a bitmap payload.
func setWordRange(b []uint64, lo, hi int) {
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - hi&63)
	if lw == hw {
		b[lw] |= loMask & hiMask
		return
	}
	b[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		b[w] = ^uint64(0)
	}
	b[hw] |= hiMask
}

// clearWordRange clears bits [lo,hi] (inclusive) in a bitmap payload.
func clearWordRange(b []uint64, lo, hi int) {
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - hi&63)
	if lw == hw {
		b[lw] &^= loMask & hiMask
		return
	}
	b[lw] &^= loMask
	for w := lw + 1; w < hw; w++ {
		b[w] = 0
	}
	b[hw] &^= hiMask
}

// maskOutsideRuns zeroes every bitmap bit not covered by runs.
func maskOutsideRuns(b []uint64, runs []uint16) {
	prevEnd := -1 // last id covered so far
	for i := 0; i < len(runs); i += 2 {
		lo, hi := int(runs[i]), int(runs[i+1])
		if lo > prevEnd+1 {
			clearWordRange(b, prevEnd+1, lo-1)
		}
		prevEnd = hi
	}
	if prevEnd < ctrBits-1 {
		clearWordRange(b, prevEnd+1, ctrBits-1)
	}
}

// popcountRange counts set bits in [lo,hi] (inclusive) of a bitmap.
func popcountRange(b []uint64, lo, hi int) int {
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - hi&63)
	if lw == hw {
		return bits.OnesCount64(b[lw] & loMask & hiMask)
	}
	n := bits.OnesCount64(b[lw] & loMask)
	for w := lw + 1; w < hw; w++ {
		n += bits.OnesCount64(b[w])
	}
	return n + bits.OnesCount64(b[hw]&hiMask)
}

func bitmapCard(b []uint64) int32 {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return int32(n)
}

// --- AND -------------------------------------------------------------

// andInPlace replaces x with x ∩ y. The array×array, array×bitmap and
// bitmap×bitmap kernels mutate x without allocating; pairs that change
// x's kind allocate only the (smaller) result payload.
func andInPlace(x, y *container, hybrid bool) {
	if x.kind == emptyCtr {
		return
	}
	if y.kind == emptyCtr {
		if hybrid {
			x.setEmpty()
		} else {
			x.toBitmap()
			clear(x.b)
			x.card = 0
		}
		return
	}
	switch x.kind {
	case arrayCtr:
		x.a = filterArray(x.a[:0], x.a, y, true)
		x.card = int32(len(x.a))
		if x.card == 0 && hybrid {
			x.setEmpty()
		}
	case bitmapCtr:
		switch y.kind {
		case bitmapCtr:
			n := 0
			for i, w := range y.b {
				x.b[i] &= w
				n += bits.OnesCount64(x.b[i])
			}
			x.card = int32(n)
			x.normalize(hybrid)
		case arrayCtr:
			kept := filterArray(nil, y.a, x, true)
			x.kind, x.a, x.b, x.card = arrayCtr, kept, nil, int32(len(kept))
			x.normalize(hybrid)
		default: // run
			maskOutsideRuns(x.b, y.a)
			x.card = bitmapCard(x.b)
			x.normalize(hybrid)
		}
	default: // x run
		switch y.kind {
		case arrayCtr:
			kept := filterArray(nil, y.a, x, true)
			x.kind, x.a, x.b, x.card = arrayCtr, kept, nil, int32(len(kept))
			x.normalize(hybrid)
		case bitmapCtr:
			b := append([]uint64(nil), y.b...)
			maskOutsideRuns(b, x.a)
			x.kind, x.a, x.b = bitmapCtr, nil, b
			x.card = bitmapCard(b)
			x.normalize(hybrid)
		default: // run × run → run
			out, card := intersectRuns(x.a, y.a)
			x.a, x.card = out, card
			if card == 0 && hybrid {
				x.setEmpty()
			}
		}
	}
}

// filterArray appends to dst the elements of src that are (keep=true)
// or are not (keep=false) contained in c. dst may alias src[:0] for an
// in-place filter.
func filterArray(dst, src []uint16, c *container, keep bool) []uint16 {
	switch c.kind {
	case bitmapCtr:
		for _, v := range src {
			if (c.b[v>>6]&(1<<(v&63)) != 0) == keep {
				dst = append(dst, v)
			}
		}
	case arrayCtr:
		// Merge walk: both sides sorted.
		j := 0
		for _, v := range src {
			for j < len(c.a) && c.a[j] < v {
				j++
			}
			if (j < len(c.a) && c.a[j] == v) == keep {
				dst = append(dst, v)
			}
		}
	case runCtr:
		j := 0
		for _, v := range src {
			for j < len(c.a) && c.a[j+1] < v {
				j += 2
			}
			in := j < len(c.a) && c.a[j] <= v && v <= c.a[j+1]
			if in == keep {
				dst = append(dst, v)
			}
		}
	default: // empty
		if !keep {
			dst = append(dst, src...)
		}
	}
	return dst
}

// intersectRuns intersects two canonical run lists into a new run list.
func intersectRuns(x, y []uint16) ([]uint16, int32) {
	var out []uint16
	card := int32(0)
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		lo := max(x[i], y[j])
		hi := min(x[i+1], y[j+1])
		if lo <= hi {
			out = append(out, lo, hi)
			card += int32(hi-lo) + 1
		}
		if x[i+1] < y[j+1] {
			i += 2
		} else {
			j += 2
		}
	}
	return out, card
}

// andCount returns |x ∩ y| without materializing the intersection —
// the record-level support check on the ELIMINATE/VERIFY hot path.
// Every kind pair has a direct kernel; none allocates.
func andCount(x, y *container) int {
	if x.card == 0 || y.card == 0 {
		return 0
	}
	// Order the switch by (x.kind, y.kind) with the array side first
	// where a kernel iterates one side.
	if x.kind > y.kind {
		x, y = y, x // all kernels below are symmetric
	}
	switch {
	case x.kind == arrayCtr && y.kind == arrayCtr:
		n, i, j := 0, 0, 0
		for i < len(x.a) && j < len(y.a) {
			switch {
			case x.a[i] < y.a[j]:
				i++
			case x.a[i] > y.a[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	case x.kind == arrayCtr && y.kind == bitmapCtr:
		n := 0
		for _, v := range x.a {
			if y.b[v>>6]&(1<<(v&63)) != 0 {
				n++
			}
		}
		return n
	case x.kind == arrayCtr && y.kind == runCtr:
		n, j := 0, 0
		for _, v := range x.a {
			for j < len(y.a) && y.a[j+1] < v {
				j += 2
			}
			if j < len(y.a) && y.a[j] <= v && v <= y.a[j+1] {
				n++
			}
		}
		return n
	case x.kind == bitmapCtr && y.kind == bitmapCtr:
		n := 0
		for i, w := range x.b {
			n += bits.OnesCount64(w & y.b[i])
		}
		return n
	case x.kind == bitmapCtr && y.kind == runCtr:
		n := 0
		for i := 0; i < len(y.a); i += 2 {
			n += popcountRange(x.b, int(y.a[i]), int(y.a[i+1]))
		}
		return n
	default: // run × run
		n := 0
		i, j := 0, 0
		for i < len(x.a) && j < len(y.a) {
			lo := max(x.a[i], y.a[j])
			hi := min(x.a[i+1], y.a[j+1])
			if lo <= hi {
				n += int(hi-lo) + 1
			}
			if x.a[i+1] < y.a[j+1] {
				i += 2
			} else {
				j += 2
			}
		}
		return n
	}
}

// intersectsCtr reports whether x and y share an id, short-circuiting on
// the first hit.
func intersectsCtr(x, y *container) bool {
	if x.card == 0 || y.card == 0 {
		return false
	}
	if x.kind > y.kind {
		x, y = y, x
	}
	switch {
	case x.kind == arrayCtr && y.kind == arrayCtr:
		i, j := 0, 0
		for i < len(x.a) && j < len(y.a) {
			switch {
			case x.a[i] < y.a[j]:
				i++
			case x.a[i] > y.a[j]:
				j++
			default:
				return true
			}
		}
		return false
	case x.kind == arrayCtr:
		for _, v := range x.a {
			if y.contains(v) {
				return true
			}
		}
		return false
	case x.kind == bitmapCtr && y.kind == bitmapCtr:
		for i, w := range x.b {
			if w&y.b[i] != 0 {
				return true
			}
		}
		return false
	case x.kind == bitmapCtr: // × run
		for i := 0; i < len(y.a); i += 2 {
			if popcountRange(x.b, int(y.a[i]), int(y.a[i+1])) > 0 {
				return true
			}
		}
		return false
	default: // run × run
		i, j := 0, 0
		for i < len(x.a) && j < len(y.a) {
			if max(x.a[i], y.a[j]) <= min(x.a[i+1], y.a[j+1]) {
				return true
			}
			if x.a[i+1] < y.a[j+1] {
				i += 2
			} else {
				j += 2
			}
		}
		return false
	}
}

// --- OR --------------------------------------------------------------

// orInPlace replaces x with x ∪ y.
func orInPlace(x, y *container, hybrid bool) {
	if y.card == 0 {
		return
	}
	if x.card == 0 {
		*x = y.clone()
		x.normalize(hybrid)
		return
	}
	switch {
	case x.kind == bitmapCtr && y.kind == bitmapCtr:
		for i, w := range y.b {
			x.b[i] |= w
		}
		x.card = bitmapCard(x.b)
	case x.kind == bitmapCtr && y.kind == arrayCtr:
		for _, v := range y.a {
			if x.b[v>>6]&(1<<(v&63)) == 0 {
				x.b[v>>6] |= 1 << (v & 63)
				x.card++
			}
		}
	case x.kind == bitmapCtr && y.kind == runCtr:
		for i := 0; i < len(y.a); i += 2 {
			setWordRange(x.b, int(y.a[i]), int(y.a[i+1]))
		}
		x.card = bitmapCard(x.b)
	case x.kind == arrayCtr && y.kind == arrayCtr:
		// A union that can outgrow the array repack bound goes through
		// bitmap form instead: chained unions (the SELECT region build)
		// would otherwise re-merge ever-larger arrays quadratically.
		if int(x.card)+int(y.card) > arrayOptCard {
			x.toBitmap()
			orInPlace(x, y, hybrid)
			return
		}
		merged := mergeArrays(x.a, y.a)
		x.a, x.card = merged, int32(len(merged))
		x.normalize(hybrid)
	case x.kind == runCtr && y.kind == runCtr:
		out, card := unionRuns(x.a, y.a)
		x.a, x.card = out, card
	default:
		// Mixed pairs involving a run or an array joining a larger
		// container: go through bitmap form (the union is at least as
		// large as the bigger side, so dense form is the safe target),
		// then re-normalize.
		x.toBitmap()
		orInPlace(x, y, hybrid)
		return
	}
	x.normalize(hybrid)
}

func mergeArrays(x, y []uint16) []uint16 {
	out := make([]uint16, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			out = append(out, x[i])
			i++
		case x[i] > y[j]:
			out = append(out, y[j])
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// unionRuns merges two canonical run lists into a canonical run list.
func unionRuns(x, y []uint16) ([]uint16, int32) {
	var out []uint16
	card := int32(0)
	i, j := 0, 0
	emit := func(lo, hi uint16) {
		if n := len(out); n > 0 && int(lo) <= int(out[n-1])+1 {
			if hi > out[n-1] {
				card += int32(hi - out[n-1])
				out[n-1] = hi
			}
			return
		}
		out = append(out, lo, hi)
		card += int32(hi-lo) + 1
	}
	for i < len(x) || j < len(y) {
		switch {
		case j >= len(y) || (i < len(x) && x[i] <= y[j]):
			emit(x[i], x[i+1])
			i += 2
		default:
			emit(y[j], y[j+1])
			j += 2
		}
	}
	return out, card
}

// --- ANDNOT ----------------------------------------------------------

// andNotInPlace replaces x with x \ y.
func andNotInPlace(x, y *container, hybrid bool) {
	if x.card == 0 || y.card == 0 {
		return
	}
	switch x.kind {
	case arrayCtr:
		x.a = filterArray(x.a[:0], x.a, y, false)
		x.card = int32(len(x.a))
		if x.card == 0 && hybrid {
			x.setEmpty()
		}
	case bitmapCtr:
		switch y.kind {
		case bitmapCtr:
			n := 0
			for i, w := range y.b {
				x.b[i] &^= w
				n += bits.OnesCount64(x.b[i])
			}
			x.card = int32(n)
		case arrayCtr:
			for _, v := range y.a {
				if x.b[v>>6]&(1<<(v&63)) != 0 {
					x.b[v>>6] &^= 1 << (v & 63)
					x.card--
				}
			}
		default: // run
			for i := 0; i < len(y.a); i += 2 {
				clearWordRange(x.b, int(y.a[i]), int(y.a[i+1]))
			}
			x.card = bitmapCard(x.b)
		}
		x.normalize(hybrid)
	default: // x run: fall back through array/bitmap by cardinality
		if x.card <= arrayOptCard && hybrid {
			x.toArray()
		} else {
			x.toBitmap()
		}
		andNotInPlace(x, y, hybrid)
	}
}

// --- complement / fill ----------------------------------------------

// complementCtr replaces x with its complement within [0, span).
func complementCtr(x *container, span int, hybrid bool) {
	switch x.kind {
	case emptyCtr:
		fillCtr(x, span, hybrid)
	case runCtr:
		out := make([]uint16, 0, len(x.a)+2)
		next := 0
		for i := 0; i < len(x.a); i += 2 {
			if int(x.a[i]) > next {
				out = append(out, uint16(next), x.a[i]-1)
			}
			next = int(x.a[i+1]) + 1
		}
		if next < span {
			out = append(out, uint16(next), uint16(span-1))
		}
		x.a, x.card = out, int32(span)-x.card
		if x.card == 0 {
			x.setEmpty()
		} else {
			x.optimize(hybrid)
		}
	default:
		x.toBitmap()
		for i := range x.b {
			x.b[i] = ^x.b[i]
		}
		trimBitmap(x.b, span)
		x.card = int32(span) - x.card
		x.normalize(hybrid)
	}
}

// fillCtr sets every id in [0, span).
func fillCtr(x *container, span int, hybrid bool) {
	if hybrid {
		x.kind, x.b = runCtr, nil
		x.a = append(x.a[:0], 0, uint16(span-1))
	} else {
		x.toBitmap()
		for i := range x.b {
			x.b[i] = ^uint64(0)
		}
		trimBitmap(x.b, span)
	}
	x.card = int32(span)
}

// trimBitmap zeroes the bits at and above span.
func trimBitmap(b []uint64, span int) {
	if span >= ctrBits {
		return
	}
	if rem := span & 63; rem != 0 {
		b[span>>6] &= (1 << rem) - 1
	}
	for w := (span + 63) >> 6; w < len(b); w++ {
		b[w] = 0
	}
}

// --- comparisons and iteration ---------------------------------------

// equalCtr reports whether x and y hold the same ids, across kinds.
func equalCtr(x, y *container) bool {
	if x.card != y.card {
		return false
	}
	if x.card == 0 {
		return true
	}
	if x.kind > y.kind {
		x, y = y, x
	}
	switch {
	case x.kind == y.kind:
		if x.kind == bitmapCtr {
			return slices.Equal(x.b, y.b)
		}
		// Array and (canonical) run lists are unique per content.
		return slices.Equal(x.a, y.a)
	case x.kind == arrayCtr:
		// Equal cardinality, so x ⊆ y suffices.
		return andCount(x, y) == int(x.card)
	default: // bitmap vs run
		return andCount(x, y) == int(x.card)
	}
}

// forEachCtr calls fn(base+id) for every id ascending; returns false if
// fn stopped the iteration.
func forEachCtr(c *container, base int, fn func(id int) bool) bool {
	switch c.kind {
	case arrayCtr:
		for _, v := range c.a {
			if !fn(base + int(v)) {
				return false
			}
		}
	case bitmapCtr:
		for wi, w := range c.b {
			for w != 0 {
				tz := bits.TrailingZeros64(w)
				if !fn(base + wi<<6 + tz) {
					return false
				}
				w &= w - 1
			}
		}
	case runCtr:
		for i := 0; i < len(c.a); i += 2 {
			for v := int(c.a[i]); v <= int(c.a[i+1]); v++ {
				if !fn(base + v) {
					return false
				}
			}
		}
	}
	return true
}

// --- hashing ----------------------------------------------------------

const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// fnvPow returns fnvPrime^k (mod 2^64): folding k zero words into an
// FNV state multiplies it by this, so sparse containers can skip their
// zero words in one multiply.
func fnvPow(k int) uint64 {
	p := uint64(fnvPrime)
	r := uint64(1)
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			r *= p
		}
		p *= p
	}
	return r
}

// hashCtr folds the container's first nwords logical dense words into h,
// yielding the same value the dense representation would: the Set hash
// is stable across container encodings (and across the pre-hybrid
// format).
func hashCtr(c *container, nwords int, h uint64) uint64 {
	switch c.kind {
	case emptyCtr:
		return h * fnvPow(nwords)
	case bitmapCtr:
		for _, w := range c.b[:nwords] {
			h = (h ^ w) * fnvPrime
		}
		return h
	case arrayCtr:
		wi := 0
		for i := 0; i < len(c.a); {
			w := int(c.a[i] >> 6)
			if w > wi {
				h *= fnvPow(w - wi)
				wi = w
			}
			var word uint64
			for i < len(c.a) && int(c.a[i]>>6) == w {
				word |= 1 << (c.a[i] & 63)
				i++
			}
			h = (h ^ word) * fnvPrime
			wi++
		}
		if nwords > wi {
			h *= fnvPow(nwords - wi)
		}
		return h
	default: // run: materialize words in a fixed stack buffer
		var buf [ctrWords]uint64
		for i := 0; i < len(c.a); i += 2 {
			setWordRange(buf[:], int(c.a[i]), int(c.a[i+1]))
		}
		for _, w := range buf[:nwords] {
			h = (h ^ w) * fnvPrime
		}
		return h
	}
}

// validate checks the container's structural invariants against its
// span; used by the binary decoder on untrusted input.
func (c *container) validate(span int) error {
	switch c.kind {
	case emptyCtr:
		if c.card != 0 || c.a != nil || c.b != nil {
			return fmt.Errorf("bitset: empty container with payload")
		}
	case arrayCtr:
		if int(c.card) != len(c.a) {
			return fmt.Errorf("bitset: array container card %d != %d ids", c.card, len(c.a))
		}
		for i, v := range c.a {
			if int(v) >= span {
				return fmt.Errorf("bitset: array id %d outside span %d", v, span)
			}
			if i > 0 && c.a[i-1] >= v {
				return fmt.Errorf("bitset: array ids not strictly ascending")
			}
		}
	case bitmapCtr:
		if len(c.b) != ctrWords {
			return fmt.Errorf("bitset: bitmap container has %d words, want %d", len(c.b), ctrWords)
		}
		if span < ctrBits && popcountRange(c.b, span, ctrBits-1) != 0 {
			return fmt.Errorf("bitset: bitmap container has bits beyond span %d", span)
		}
		if got := bitmapCard(c.b); got != c.card {
			return fmt.Errorf("bitset: bitmap container card %d != %d set bits", c.card, got)
		}
	case runCtr:
		if len(c.a)%2 != 0 {
			return fmt.Errorf("bitset: odd run list length %d", len(c.a))
		}
		card := int32(0)
		for i := 0; i < len(c.a); i += 2 {
			lo, hi := c.a[i], c.a[i+1]
			if lo > hi || int(hi) >= span {
				return fmt.Errorf("bitset: run [%d,%d] invalid for span %d", lo, hi, span)
			}
			if i > 0 && int(lo) <= int(c.a[i-1])+1 {
				return fmt.Errorf("bitset: runs not disjoint/canonical")
			}
			card += int32(hi-lo) + 1
		}
		if card != c.card {
			return fmt.Errorf("bitset: run container card %d != %d covered ids", c.card, card)
		}
	default:
		return fmt.Errorf("bitset: unknown container kind %d", c.kind)
	}
	return nil
}
