package colarm

import (
	"testing"
)

// FuzzMineQL drives the whole stack — parser, query building,
// optimizer, executor — with arbitrary query-language input against the
// paper's salary dataset. The engine must reject bad input with an
// error, never panic, and every accepted query's rules must respect its
// thresholds.
func FuzzMineQL(f *testing.F) {
	ds, err := Salary()
	if err != nil {
		f.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18})
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		`REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Location = (Seattle), Gender = (F) AND ITEM ATTRIBUTES Age, Salary HAVING minsupport = 70% AND minconfidence = 95%;`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM salary HAVING minsupport = 20% AND minconfidence = 50%`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Age = (30-40) HAVING minsupport = 0.3 AND minconfidence = 0 USING PLAN ARM;`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Gender = (M, F) HAVING minsupport = 50% AND minconfidence = 80% USING PLAN S-E-V`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM other HAVING minsupport = 0.5 AND minconfidence = 0.5`,
		`REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Nope = (x) HAVING minsupport = 0.5 AND minconfidence = 0.5`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := eng.MineQL(src)
		if err != nil {
			return
		}
		q, err := eng.ParseQuery(src)
		if err != nil {
			t.Fatalf("MineQL accepted %q but ParseQuery rejects it: %v", src, err)
		}
		for _, r := range res.Rules {
			if r.Confidence < q.MinConfidence {
				t.Fatalf("rule %v violates minconfidence %v", r, q.MinConfidence)
			}
			if r.Support < q.MinSupport {
				t.Fatalf("rule %v violates minsupport %v", r, q.MinSupport)
			}
		}
	})
}
