package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpSearch:          "SEARCH",
		OpSupportedSearch: "SUPPORTED-SEARCH",
		OpEliminate:       "ELIMINATE",
		OpUnion:           "UNION",
		OpVerify:          "VERIFY",
		OpSelect:          "SELECT",
		OpARM:             "ARM",
	}
	for op, name := range want {
		if got := op.String(); got != name {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, name)
		}
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range op renders %q", got)
	}
}

func TestTraceRecord(t *testing.T) {
	tr := &Trace{}
	tr.Record(OpSearch, time.Millisecond, -1, 10, 1, "nodes=3")
	tr.Record(OpEliminate, 2*time.Millisecond, 10, 4, 8, "checks=7")
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tr.Spans))
	}
	s := tr.Spans[1]
	if s.Op != OpEliminate || s.In != 10 || s.Out != 4 || s.Workers != 8 || s.Detail != "checks=7" {
		t.Errorf("span mismatch: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram("q", "", "", DefaultLatencyBounds())
	// 100 observations spread evenly across 1..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050*time.Millisecond {
		t.Fatalf("sum = %v, want 5.05s", h.Sum())
	}
	// The factor-2 bucket grid bounds the estimate to 2x either way.
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{{0.50, 50 * time.Millisecond}, {0.95, 95 * time.Millisecond}, {0.99, 99 * time.Millisecond}} {
		got := h.Quantile(tc.q)
		if got < tc.exact/2 || got > tc.exact*2 {
			t.Errorf("p%v = %v, want within 2x of %v", 100*tc.q, got, tc.exact)
		}
	}
	if h.Quantile(0) == 0 {
		t.Errorf("p0 of a non-empty histogram should be positive")
	}
	empty := newHistogram("e", "", "", DefaultLatencyBounds())
	if empty.Quantile(0.5) != 0 {
		t.Errorf("quantile of an empty histogram should be 0")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram("q", "", "", []float64{0.001, 0.002})
	h.Observe(time.Hour) // beyond every bound -> +Inf bucket
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.99); got != 2*time.Millisecond {
		t.Errorf("overflow quantile = %v, want the top bound 2ms", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("q", "", "", DefaultLatencyBounds())
	var wg sync.WaitGroup
	const (
		goroutines = 8
		each       = 1000
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(i%50+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*each)
	}
	var inBuckets int64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != goroutines*each {
		t.Fatalf("bucket sum = %d, want %d", inBuckets, goroutines*each)
	}
}

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("colarm_queries_total", "Queries served.")
	b := r.Counter("colarm_queries_total", "Queries served.")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	labeled := r.CounterWith("colarm_queries_total", `dataset="chess"`, "Queries served.")
	if labeled == a {
		t.Fatalf("labeled counter must be distinct from the unlabeled one")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("colarm_queries_total", "Queries served.").Inc()
			}
		}()
	}
	wg.Wait()
	if got := a.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.CounterWith("colarm_queries_total", `dataset="chess"`, "Queries served.")
	c.Add(7)
	r.CounterWith("colarm_queries_total", `dataset="mushroom"`, "Queries served.").Add(2)
	h := r.Histogram("colarm_query_seconds", "", "Query latency.", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP colarm_queries_total Queries served.",
		"# TYPE colarm_queries_total counter",
		`colarm_queries_total{dataset="chess"} 7`,
		`colarm_queries_total{dataset="mushroom"} 2`,
		"# TYPE colarm_query_seconds histogram",
		`colarm_query_seconds_bucket{le="0.001"} 1`,
		`colarm_query_seconds_bucket{le="0.01"} 2`,
		`colarm_query_seconds_bucket{le="+Inf"} 3`,
		"colarm_query_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE headers must appear exactly once per family.
	if n := strings.Count(out, "# TYPE colarm_queries_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestAccuracyTracker(t *testing.T) {
	tr := NewAccuracyTracker(0.05)
	if !tr.Record(true, 0) {
		t.Errorf("exact hit should be correct")
	}
	if !tr.Record(false, 0.03) {
		t.Errorf("miss within tolerance should count as correct")
	}
	if tr.Record(false, 0.40) {
		t.Errorf("40%% regret should be incorrect")
	}
	rep := tr.Report()
	if rep.Queries != 3 || rep.Correct != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if got := rep.Accuracy(); got < 0.66 || got > 0.67 {
		t.Errorf("accuracy = %v, want 2/3", got)
	}
	if rep.MissRegretMax != 0.40 {
		t.Errorf("max regret = %v, want 0.40", rep.MissRegretMax)
	}
	if want := (0.03 + 0.40) / 2; math.Abs(rep.MissRegretAvg-want) > 1e-12 {
		t.Errorf("avg regret = %v, want %v", rep.MissRegretAvg, want)
	}
	if (AccuracyReport{}).Accuracy() != 0 {
		t.Errorf("empty report accuracy should be 0")
	}
}
