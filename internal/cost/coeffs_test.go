package cost

import (
	"math"
	"math/rand"
	"testing"

	"colarm/internal/itemset"
	"colarm/internal/plans"
)

func TestUnitsVecRoundTrip(t *testing.T) {
	u := Units{WordOp: 1, BoxRel: 2, IDProbe: 3, MapOp: 4, GenOp: 5}
	if got := UnitsFromVec(u.Vec()); got != u {
		t.Fatalf("round trip: %+v != %+v", got, u)
	}
	names := UnitNames()
	if names[0] != "wordOp" || names[4] != "genOp" {
		t.Fatalf("unit names out of order: %v", names)
	}
}

// TestDecomposeExact pins the property the recalibrator relies on: the
// estimates are exactly linear in the units, so the basis decomposition
// reproduces any-units estimates as dot products — totals and
// per-operator terms alike.
func TestDecomposeExact(t *testing.T) {
	mo, _ := buildModel(t, 400)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		reg := itemset.RegionFor(mo.Idx.Space)
		a := r.Intn(mo.Idx.Space.NumAttrs())
		if err := reg.Restrict(a, []int{0, 1}); err != nil {
			t.Fatal(err)
		}
		q := &plans.Query{Region: reg, MinSupport: 0.2 + r.Float64()*0.5, MinConfidence: 0.8}
		coeffs := mo.Decompose(q)
		if len(coeffs) != len(plans.Kinds()) {
			t.Fatalf("decompose returned %d plans", len(coeffs))
		}
		for probe := 0; probe < 3; probe++ {
			u := Units{
				WordOp:  r.Float64()*10 + 0.1,
				BoxRel:  r.Float64()*10 + 0.1,
				IDProbe: r.Float64()*10 + 0.1,
				MapOp:   r.Float64()*20 + 0.1,
				GenOp:   r.Float64()*40 + 0.1,
			}
			alt := *mo
			alt.U = u
			ests := alt.Estimate(q)
			for i, pc := range coeffs {
				if pc.Plan != ests[i].Plan {
					t.Fatalf("plan order mismatch: %v vs %v", pc.Plan, ests[i].Plan)
				}
				if got, want := pc.Total(u), ests[i].Total; !closeEnough(got, want) {
					t.Errorf("%v total via coeffs %v != estimate %v", pc.Plan, got, want)
				}
				terms := ests[i].Terms()
				if len(terms) != len(pc.Terms) {
					t.Fatalf("%v term count %d != %d", pc.Plan, len(pc.Terms), len(terms))
				}
				for j, term := range terms {
					if pc.Terms[j].Operator != term.Operator {
						t.Errorf("%v term %d operator %q != %q", pc.Plan, j, pc.Terms[j].Operator, term.Operator)
					}
					if got := pc.Terms[j].Cost(u); !closeEnough(got, term.Cost) {
						t.Errorf("%v term %s via coeffs %v != %v", pc.Plan, term.Operator, got, term.Cost)
					}
				}
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
