// Quickstart: the paper's running example on the Table 1 salary
// dataset. A global rule says 20-30 year olds earn 90K-120K; zooming
// into female employees in Seattle reveals the opposite local trend —
// Simpson's paradox in action.
package main

import (
	"fmt"
	"log"

	"colarm"
)

func main() {
	ds, err := colarm.Salary()
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: mine closed frequent itemsets at the primary
	// support threshold and build the two-level MIP-index.
	eng, err := colarm.Open(ds, colarm.Options{PrimarySupport: 0.18})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d records into %d multidimensional itemset partitions\n\n",
		ds.NumRecords(), eng.NumPartitions())

	// The global trend: mine the whole dataset.
	global, err := eng.Mine(colarm.Query{
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.45,
		MinConfidence:  0.80,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("global rules (whole dataset):")
	for _, r := range global.Rules {
		fmt.Println(" ", r)
	}

	// The localized query: female employees in Seattle.
	local, err := eng.Mine(colarm.Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocalized rules (Location=Seattle, Gender=F — %d records), plan %s:\n",
		local.Stats.SubsetSize, local.Stats.Plan)
	for _, r := range local.Rules {
		fmt.Println(" ", r)
	}

	// The same query through the paper's query language.
	ql, err := eng.MineQL(`
		REPORT LOCALIZED ASSOCIATION RULES
		FROM salary
		WHERE RANGE Location = (Seattle), Gender = (F)
		AND ITEM ATTRIBUTES Age, Salary
		HAVING minsupport = 70% AND minconfidence = 95%;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvia the query language: %d rules (same answer)\n", len(ql.Rules))
}
