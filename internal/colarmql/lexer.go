// Package colarmql implements the localized-rule-mining query language
// of the paper (Section 2.2):
//
//	REPORT LOCALIZED ASSOCIATION RULES
//	FROM salary
//	WHERE RANGE Location = (Seattle), Gender = (F)
//	AND ITEM ATTRIBUTES Age, Salary
//	HAVING minsupport = 0.70 AND minconfidence = 0.95;
//
// Extensions beyond the paper's sketch: values may be quoted when they
// contain commas or parentheses, numbers accept percent signs
// (minsupport = 70%), and an optional trailing "USING PLAN <name>"
// clause forces a specific execution plan.
package colarmql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokWord             // identifier / keyword / bare value
	tokString           // quoted value
	tokNumber           // numeric literal (possibly with %)
	tokPunct            // one of , ( ) = ;
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits the source into tokens. Bare words may contain letters,
// digits, '-', '_', '.', '$' and '+' so that labels like "90K-120K" or
// "30-40" lex as single tokens.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',' || c == '(' || c == ')' || c == '=' || c == ';':
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || c == '.':
			l.lexNumberOrWord()
		case isWordByte(c):
			l.lexWord()
		default:
			return nil, fmt.Errorf("colarmql: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isWordByte(c byte) bool {
	return c == '-' || c == '_' || c == '.' || c == '$' || c == '+' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c >= 0x80 // allow UTF-8 continuation in labels
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{tokString, b.String(), start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("colarmql: unterminated string starting at offset %d", start)
}

// lexNumberOrWord reads a run starting with a digit or dot. If the whole
// run parses as a number (with optional trailing %), it is a number;
// otherwise it is a word (values like "20-30" start with digits).
func (l *lexer) lexNumberOrWord() {
	start := l.pos
	for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	// Optional percent sign directly attached.
	if l.pos < len(l.src) && l.src[l.pos] == '%' {
		l.pos++
		l.toks = append(l.toks, token{tokNumber, text + "%", start})
		return
	}
	if isNumeric(text) {
		l.toks = append(l.toks, token{tokNumber, text, start})
		return
	}
	l.toks = append(l.toks, token{tokWord, text, start})
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{tokWord, l.src[start:l.pos], start})
}

// isNumeric reports whether a digit-initial run is a numeric literal.
// Anything strconv.ParseFloat accepts qualifies — including exponent
// forms like "1e-05", which Statement.String emits for small
// thresholds via %g — except non-finite values, which stay words.
func isNumeric(s string) bool {
	f, err := strconv.ParseFloat(s, 64)
	return err == nil && !math.IsInf(f, 0) && !math.IsNaN(f)
}
