// Flat slab layout for the R-tree, following the packed-node idiom of
// tile38's flat btree/rtree layouts: nodes live in one []fnode slab
// addressed by int32 index, node bounding boxes live inline in a single
// []int32 arena (Lo then Hi per node, so a traversal touches one cache
// line per node instead of three heap objects), interior children are
// runs in a child-index arena, and leaf entries are parallel
// box/id/support arenas. Bulk packing appends level by level; Guttman
// Insert keeps working by appending fresh nodes and runs at the arena
// ends (relocated runs leave garbage behind, which is acceptable — the
// packed offline build is the norm and dynamic inserts the exception).
package rtree

import (
	"fmt"

	"colarm/internal/itemset"
)

// fnode is one packed node: off/count address a run in kidArena
// (interior) or in the entry arenas (leaf). The node's box lives at
// nboxes[i*2*dims : (i+1)*2*dims].
type fnode struct {
	off        int32
	count      int32
	maxSupport int32
	leaf       bool
}

// nodeBox returns a Box view aliasing node i's slot in the box arena.
// Views must not be held across any call that appends to nboxes.
func (t *Tree) nodeBox(i int32) itemset.Box {
	o := int(i) * 2 * t.dims
	d := t.dims
	return itemset.Box{Lo: t.nboxes[o : o+d : o+d], Hi: t.nboxes[o+d : o+2*d : o+2*d]}
}

// entryBox returns a Box view aliasing entry slot s in the entry arena.
func (t *Tree) entryBox(s int32) itemset.Box {
	o := int(s) * 2 * t.dims
	d := t.dims
	return itemset.Box{Lo: t.entBoxes[o : o+d : o+d], Hi: t.entBoxes[o+d : o+2*d : o+2*d]}
}

func (t *Tree) entryAt(s int32) Entry {
	return Entry{Box: t.entryBox(s), ID: t.entIDs[s], Support: t.entSups[s]}
}

// appendNode appends an empty node (sentinel empty box) and returns its
// index.
func (t *Tree) appendNode(leaf bool) int32 {
	i := int32(len(t.fnodes))
	t.fnodes = append(t.fnodes, fnode{leaf: leaf})
	for d := 0; d < t.dims; d++ {
		t.nboxes = append(t.nboxes, 1<<30)
	}
	for d := 0; d < t.dims; d++ {
		t.nboxes = append(t.nboxes, -1)
	}
	return i
}

// appendEntrySlot copies e into a fresh slot at the end of the entry
// arenas and returns the slot index.
func (t *Tree) appendEntrySlot(e Entry) int32 {
	s := int32(len(t.entIDs))
	t.entBoxes = append(t.entBoxes, e.Box.Lo...)
	t.entBoxes = append(t.entBoxes, e.Box.Hi...)
	t.entIDs = append(t.entIDs, e.ID)
	t.entSups = append(t.entSups, e.Support)
	return s
}

// packFlat bulk-loads the slabs from entries already in packing order.
func (t *Tree) packFlat(entries []Entry) {
	t.flat = true
	n := len(entries)
	t.fnodes = make([]fnode, 0, 2*max(1, n/t.fanout)+2)
	t.nboxes = make([]int32, 0, cap(t.fnodes)*2*t.dims)
	t.entBoxes = make([]int32, 0, n*2*t.dims)
	t.entIDs = make([]int32, 0, n)
	t.entSups = make([]int32, 0, n)
	if n == 0 {
		t.froot = t.appendNode(true)
		return
	}
	for _, e := range entries {
		t.appendEntrySlot(e)
	}
	// Pack leaves over contiguous entry runs.
	levelStart := int32(0)
	for i := 0; i < n; i += t.fanout {
		end := min(i+t.fanout, n)
		ni := t.appendNode(true)
		nd := &t.fnodes[ni]
		nd.off, nd.count = int32(i), int32(end-i)
		b := t.nodeBox(ni)
		for s := int32(i); s < int32(end); s++ {
			b.ExtendBox(t.entryBox(s))
			if t.entSups[s] > t.fnodes[ni].maxSupport {
				t.fnodes[ni].maxSupport = t.entSups[s]
			}
		}
	}
	// Pack upper levels until a single root remains. Each level's nodes
	// are contiguous in the slab, so child runs are consecutive indices.
	levelEnd := int32(len(t.fnodes))
	for levelEnd-levelStart > 1 {
		nextStart := levelEnd
		for i := levelStart; i < levelEnd; i += int32(t.fanout) {
			end := i + int32(t.fanout)
			if end > levelEnd {
				end = levelEnd
			}
			off := int32(len(t.kidArena))
			for c := i; c < end; c++ {
				t.kidArena = append(t.kidArena, c)
			}
			ni := t.appendNode(false)
			nd := &t.fnodes[ni]
			nd.off, nd.count = off, end-i
			b := t.nodeBox(ni)
			for c := i; c < end; c++ {
				b.ExtendBox(t.nodeBox(c))
				if t.fnodes[c].maxSupport > t.fnodes[ni].maxSupport {
					t.fnodes[ni].maxSupport = t.fnodes[c].maxSupport
				}
			}
		}
		levelStart, levelEnd = nextStart, int32(len(t.fnodes))
	}
	t.froot = levelStart
	t.size = len(entries)
}

// kids returns node n's child run. The returned slice aliases kidArena;
// not valid across appends.
func (t *Tree) kids(n int32) []int32 {
	nd := &t.fnodes[n]
	return t.kidArena[nd.off : nd.off+nd.count]
}

// searchFlat mirrors Tree.search over the slabs. Box classification
// reads the packed arenas directly (RelationPacked) — constructing Box
// views per probe costs more than the classification itself on deep
// scans, so views are only materialized for emitted entries.
func (t *Tree) searchFlat(ni int32, reg *itemset.Region, containedAbove bool, minCount int32, visit Visit, st *SearchStats) bool {
	st.NodesVisited++
	nd := &t.fnodes[ni]
	stride := 2 * t.dims
	if nd.leaf {
		for s := nd.off; s < nd.off+nd.count; s++ {
			st.EntriesChecked++
			if minCount >= 0 && t.entSups[s] < minCount {
				continue
			}
			rel := itemset.Contained
			if !containedAbove {
				rel = reg.RelationPacked(t.entBoxes, int(s)*stride, t.dims)
				if rel == itemset.Disjoint {
					continue
				}
			}
			st.EntriesEmitted++
			if !visit(t.entryAt(s), rel) {
				return false
			}
		}
		return true
	}
	for _, c := range t.kids(ni) {
		if minCount >= 0 && t.fnodes[c].maxSupport < minCount {
			continue
		}
		childContained := containedAbove
		if !childContained {
			switch reg.RelationPacked(t.nboxes, int(c)*stride, t.dims) {
			case itemset.Disjoint:
				continue
			case itemset.Contained:
				childContained = true
			}
		}
		if !t.searchFlat(c, reg, childContained, minCount, visit, st) {
			return false
		}
	}
	return true
}

func (t *Tree) searchBoxFlat(ni int32, q itemset.Box, visit func(e Entry) bool, st *SearchStats) bool {
	st.NodesVisited++
	nd := &t.fnodes[ni]
	if nd.leaf {
		for s := nd.off; s < nd.off+nd.count; s++ {
			st.EntriesChecked++
			if q.Intersects(t.entryBox(s)) {
				st.EntriesEmitted++
				if !visit(t.entryAt(s)) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range t.kids(ni) {
		if q.Intersects(t.nodeBox(c)) {
			if !t.searchBoxFlat(c, q, visit, st) {
				return false
			}
		}
	}
	return true
}

func (t *Tree) allFlat(ni int32, visit func(e Entry) bool) bool {
	nd := &t.fnodes[ni]
	if nd.leaf {
		for s := nd.off; s < nd.off+nd.count; s++ {
			if !visit(t.entryAt(s)) {
				return false
			}
		}
		return true
	}
	for _, c := range t.kids(ni) {
		if !t.allFlat(c, visit) {
			return false
		}
	}
	return true
}

func (t *Tree) heightFlat() int {
	h := 1
	for n := t.froot; !t.fnodes[n].leaf; n = t.kidArena[t.fnodes[n].off] {
		h++
	}
	return h
}

// --- Guttman insertion on the slab ---

// insertFlat appends the entry to its chosen leaf's run (relocating the
// run to the arena end when it is not already there), grows boxes and
// max-support aggregates along the path, and splits overfull nodes by
// appending fresh nodes and runs.
func (t *Tree) insertFlat(e Entry) {
	path := t.chooseLeafFlat(t.froot, e.Box, nil)
	leaf := path[len(path)-1]
	t.appendToLeafRun(leaf, e)
	t.size++
	for _, ni := range path {
		b := t.nodeBox(ni)
		if b.IsEmpty() {
			copy(b.Lo, e.Box.Lo)
			copy(b.Hi, e.Box.Hi)
		} else {
			b.ExtendBox(e.Box)
		}
		if e.Support > t.fnodes[ni].maxSupport {
			t.fnodes[ni].maxSupport = e.Support
		}
	}
	if t.fnodes[leaf].count > int32(t.fanout) {
		t.splitUpFlat(path)
	}
}

func (t *Tree) chooseLeafFlat(ni int32, b itemset.Box, path []int32) []int32 {
	path = append(path, ni)
	if t.fnodes[ni].leaf {
		return path
	}
	best := int32(-1)
	var bestEnl, bestArea float64
	for _, c := range t.kids(ni) {
		cb := t.nodeBox(c)
		enl := enlargement(cb, b)
		area := boxArea(cb)
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return t.chooseLeafFlat(best, b, path)
}

// appendToLeafRun adds e to leaf ni's entry run, relocating the run to
// the end of the entry arenas unless it is already the tail.
func (t *Tree) appendToLeafRun(ni int32, e Entry) {
	nd := &t.fnodes[ni]
	if int(nd.off+nd.count) != len(t.entIDs) {
		newOff := int32(len(t.entIDs))
		for s := nd.off; s < nd.off+nd.count; s++ {
			t.appendEntrySlot(t.entryAt(s))
		}
		nd = &t.fnodes[ni] // appendEntrySlot does not move fnodes, but re-read for clarity
		nd.off = newOff
	}
	t.appendEntrySlot(e)
	t.fnodes[ni].count++
}

// replaceKid rewrites parent's child run substituting oldKid with a and
// appending b, relocating the run to the arena end unless it is the
// tail.
func (t *Tree) replaceKid(parent, oldKid, a, b int32) {
	nd := &t.fnodes[parent]
	if int(nd.off+nd.count) != len(t.kidArena) {
		newOff := int32(len(t.kidArena))
		t.kidArena = append(t.kidArena, t.kidArena[nd.off:nd.off+nd.count]...)
		nd.off = newOff
	}
	run := t.kidArena[nd.off : nd.off+nd.count]
	for j, c := range run {
		if c == oldKid {
			run[j] = a
			break
		}
	}
	t.kidArena = append(t.kidArena, b)
	t.fnodes[parent].count++
}

// refreshFlat recomputes node ni's box and max-support from its members.
func (t *Tree) refreshFlat(ni int32) {
	nd := &t.fnodes[ni]
	b := t.nodeBox(ni)
	for d := 0; d < t.dims; d++ {
		b.Lo[d] = 1 << 30
		b.Hi[d] = -1
	}
	nd.maxSupport = 0
	if nd.leaf {
		for s := nd.off; s < nd.off+nd.count; s++ {
			b.ExtendBox(t.entryBox(s))
			if t.entSups[s] > nd.maxSupport {
				nd.maxSupport = t.entSups[s]
			}
		}
		return
	}
	for _, c := range t.kids(ni) {
		b.ExtendBox(t.nodeBox(c))
		if t.fnodes[c].maxSupport > nd.maxSupport {
			nd.maxSupport = t.fnodes[c].maxSupport
		}
	}
}

// splitUpFlat mirrors splitUp on the slab.
func (t *Tree) splitUpFlat(path []int32) {
	for i := len(path) - 1; i >= 0; i-- {
		ni := path[i]
		nd := &t.fnodes[ni]
		if nd.count <= int32(t.fanout) {
			t.refreshFlat(ni)
			continue
		}
		a, b := t.splitNodeFlat(ni)
		if i == 0 {
			off := int32(len(t.kidArena))
			t.kidArena = append(t.kidArena, a, b)
			root := t.appendNode(false)
			rd := &t.fnodes[root]
			rd.off, rd.count = off, 2
			t.refreshFlat(root)
			t.froot = root
			return
		}
		t.replaceKid(path[i-1], ni, a, b)
	}
}

// flatMembers snapshots node ni's members for a split. Boxes are cloned:
// the split appends to the box/entry arenas, which may reallocate them
// under any live views.
func (t *Tree) flatMembers(ni int32) []member {
	nd := &t.fnodes[ni]
	ms := make([]member, 0, nd.count)
	if nd.leaf {
		for s := nd.off; s < nd.off+nd.count; s++ {
			e := t.entryAt(s)
			e.Box = e.Box.Clone()
			ms = append(ms, member{box: e.Box, entry: e})
		}
		return ms
	}
	for _, c := range t.kids(ni) {
		ms = append(ms, member{box: t.nodeBox(c).Clone(), childIdx: c, isChild: true})
	}
	return ms
}

// splitNodeFlat divides overfull node ni into two fresh slab nodes and
// returns their indices. Node ni's storage becomes garbage.
func (t *Tree) splitNodeFlat(ni int32) (int32, int32) {
	leaf := t.fnodes[ni].leaf
	ga, gb := t.partitionMembers(t.flatMembers(ni))
	return t.materializeGroup(ga, leaf), t.materializeGroup(gb, leaf)
}

// materializeGroup appends a fresh node holding the group's members.
func (t *Tree) materializeGroup(g *group, leaf bool) int32 {
	ni := t.appendNode(leaf)
	nd := &t.fnodes[ni]
	if leaf {
		nd.off = int32(len(t.entIDs))
		for _, m := range g.members {
			t.appendEntrySlot(m.entry)
			if m.entry.Support > t.fnodes[ni].maxSupport {
				t.fnodes[ni].maxSupport = m.entry.Support
			}
		}
	} else {
		nd.off = int32(len(t.kidArena))
		for _, m := range g.members {
			t.kidArena = append(t.kidArena, m.childIdx)
			if t.fnodes[m.childIdx].maxSupport > t.fnodes[ni].maxSupport {
				t.fnodes[ni].maxSupport = t.fnodes[m.childIdx].maxSupport
			}
		}
	}
	nd = &t.fnodes[ni]
	nd.count = int32(len(g.members))
	b := t.nodeBox(ni)
	copy(b.Lo, g.box.Lo)
	copy(b.Hi, g.box.Hi)
	return ni
}

// validateFlat mirrors Validate on the slab.
func (t *Tree) validateFlat() error {
	leafDepth := -1
	var walk func(ni int32, depth int) (itemset.Box, int32, error)
	walk = func(ni int32, depth int) (itemset.Box, int32, error) {
		nd := &t.fnodes[ni]
		if nd.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			if int(nd.count) > t.fanout {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaf with %d entries exceeds fanout %d", nd.count, t.fanout)
			}
			b := itemset.NewBox(t.dims)
			var ms int32
			for s := nd.off; s < nd.off+nd.count; s++ {
				b.ExtendBox(t.entryBox(s))
				if t.entSups[s] > ms {
					ms = t.entSups[s]
				}
			}
			if nd.count > 0 && !t.nodeBox(ni).ContainsBox(b) {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaf box %v does not cover entries %v", t.nodeBox(ni), b)
			}
			if nd.maxSupport < ms {
				return itemset.Box{}, 0, fmt.Errorf("rtree: leaf maxSupport %d < entry max %d", nd.maxSupport, ms)
			}
			return t.nodeBox(ni), nd.maxSupport, nil
		}
		if nd.count == 0 {
			return itemset.Box{}, 0, fmt.Errorf("rtree: interior node with no children")
		}
		if int(nd.count) > t.fanout {
			return itemset.Box{}, 0, fmt.Errorf("rtree: interior node with %d children exceeds fanout %d", nd.count, t.fanout)
		}
		b := itemset.NewBox(t.dims)
		var ms int32
		for _, c := range t.kids(ni) {
			cb, cms, err := walk(c, depth+1)
			if err != nil {
				return itemset.Box{}, 0, err
			}
			b.ExtendBox(cb)
			if cms > ms {
				ms = cms
			}
		}
		if !t.nodeBox(ni).ContainsBox(b) {
			return itemset.Box{}, 0, fmt.Errorf("rtree: node box %v does not cover children %v", t.nodeBox(ni), b)
		}
		if nd.maxSupport < ms {
			return itemset.Box{}, 0, fmt.Errorf("rtree: node maxSupport %d < children max %d", nd.maxSupport, ms)
		}
		return t.nodeBox(ni), nd.maxSupport, nil
	}
	_, _, err := walk(t.froot, 0)
	return err
}
