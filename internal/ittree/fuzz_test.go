package ittree

import (
	"fmt"
	"math/rand"
	"testing"

	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/relation"
)

// oracleClosure is the brute-force reference for ClosureID: among ALL
// stored CFIs containing x, the one with maximum support. The maximum
// is unique — a containing CFI's tidset is a subset of tidset(x), so a
// containing CFI whose support reaches |tidset(x)| has tidset exactly
// tidset(x) and is the closure itself — so no tie-break is needed.
func oracleClosure(sets []*charm.ClosedSet, x itemset.Set) (int, bool) {
	best := -1
	for id, c := range sets {
		if !x.SubsetOf(c.Items) {
			continue
		}
		if best < 0 || c.Support > sets[best].Support {
			best = id
		}
	}
	return best, best >= 0
}

// oracleContaining is the brute-force reference for ContainingIDs.
func oracleContaining(sets []*charm.ClosedSet, x itemset.Set) []int32 {
	var out []int32
	for id, c := range sets {
		if x.SubsetOf(c.Items) {
			out = append(out, int32(id))
		}
	}
	return out
}

// FuzzClosure drives random datasets through both layouts and checks
// ClosureID, LookupID and ContainingIDs against the brute-force
// smallest-containing-CFI oracle. The two layouts must also agree with
// each other bit for bit — the flat closure scan's (support desc, id
// asc) early exit has to reproduce the pointer path exactly.
func FuzzClosure(f *testing.F) {
	f.Add(int64(1), 12, 4, 3, 2)
	f.Add(int64(42), 25, 5, 4, 1)
	f.Add(int64(7), 6, 2, 2, 1)
	f.Add(int64(20260808), 40, 3, 3, 3)
	f.Fuzz(func(t *testing.T, seed int64, rows, attrs, card, minCount int) {
		rows = 1 + abs(rows)%40
		attrs = 1 + abs(attrs)%5
		card = 2 + abs(card)%3
		minCount = 1 + abs(minCount)%3
		rng := rand.New(rand.NewSource(seed))

		names := make([]string, attrs)
		for a := range names {
			names[a] = fmt.Sprintf("A%d", a)
		}
		b := relation.NewBuilder("fuzz", names...)
		row := make([]string, attrs)
		for r := 0; r < rows; r++ {
			for a := 0; a < attrs; a++ {
				row[a] = fmt.Sprintf("v%d", rng.Intn(card))
			}
			if err := b.AddRecord(row...); err != nil {
				t.Fatal(err)
			}
		}
		d := b.Build()
		sp := itemset.NewSpace(d)
		res, err := charm.Mine(d, sp, minCount)
		if err != nil {
			t.Fatal(err)
		}
		flat := BuildLayout(res, sp.NumItems(), FlatLayout)
		ptr := BuildLayout(res, sp.NumItems(), PointerLayout)
		if err := flat.Validate(); err != nil {
			t.Fatalf("flat: %v", err)
		}
		if err := ptr.Validate(); err != nil {
			t.Fatalf("pointer: %v", err)
		}

		// Probe sets: every stored CFI (identity), random subsets of
		// stored CFIs, and random item combinations (often absent).
		var probes []itemset.Set
		for _, c := range res.Closed {
			probes = append(probes, c.Items)
			if len(c.Items) > 1 {
				sub := append(itemset.Set(nil), c.Items...)
				rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
				sub = sub[:1+rng.Intn(len(sub))]
				probes = append(probes, itemset.NewSet(sub...))
			}
		}
		for i := 0; i < 16; i++ {
			n := 1 + rng.Intn(3)
			raw := make([]itemset.Item, n)
			for j := range raw {
				raw[j] = itemset.Item(rng.Intn(sp.NumItems()))
			}
			probes = append(probes, itemset.NewSet(raw...))
		}

		for _, x := range probes {
			wantID, wantOK := oracleClosure(res.Closed, x)
			for _, tr := range []*Tree{flat, ptr} {
				gotID, gotOK := tr.ClosureID(x)
				if gotOK != wantOK || (wantOK && gotID != wantID) {
					t.Fatalf("%s: ClosureID(%v) = (%d,%v), oracle (%d,%v)",
						tr.Layout(), x, gotID, gotOK, wantID, wantOK)
				}
				wantSupp := -1
				if wantOK {
					wantSupp = res.Closed[wantID].Support
				}
				if got := tr.GlobalSupport(x); got != wantSupp {
					t.Fatalf("%s: GlobalSupport(%v) = %d, want %d", tr.Layout(), x, got, wantSupp)
				}
				wantIDs := oracleContaining(res.Closed, x)
				gotIDs := tr.ContainingIDs(x)
				if len(gotIDs) != len(wantIDs) {
					t.Fatalf("%s: ContainingIDs(%v) = %v, oracle %v", tr.Layout(), x, gotIDs, wantIDs)
				}
				for i := range wantIDs {
					if gotIDs[i] != wantIDs[i] {
						t.Fatalf("%s: ContainingIDs(%v) = %v, oracle %v", tr.Layout(), x, gotIDs, wantIDs)
					}
				}
				// Exact lookup agrees with a linear scan.
				exact := -1
				for id, c := range res.Closed {
					if c.Items.Equal(x) {
						exact = id
						break
					}
				}
				lid, lok := tr.LookupID(x)
				if lok != (exact >= 0) || (lok && lid != exact) {
					t.Fatalf("%s: LookupID(%v) = (%d,%v), scan %d", tr.Layout(), x, lid, lok, exact)
				}
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
