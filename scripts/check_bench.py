#!/usr/bin/env python3
"""Validate the committed perf-trajectory artifacts (BENCH_<pr>.json).

Three checks, all against files committed to the repository — the script
never runs a benchmark itself:

 1. every artifact is well-formed and carries the fields its bench kind
    promises (tidset rows, shards rows, the index report's kernel and
    consolidation sections, the standing report's notify-latency rows,
    or the advisor report's calibration and skewed-workload sections —
    where the guardrail replay must have passed, plan-choice accuracy
    and mean latency must not collapse after a unit swap, and the
    queries the secondary index reclaimed from forced-ARM must actually
    have gotten faster);
 2. inside every "index" report the flat layout must win (or tie) each
    physical kernel it is benchmarked on against the pointer layout —
    the flat slabs exist for speed, so a committed artifact showing the
    pointer layout ahead is a regression by definition;
 3. consolidation pauses must not regress across PRs: for each shard
    count reported by both the newest artifact carrying pauses and the
    most recent earlier one, the new pause may exceed the old by at most
    REGRESSION_SLACK (these are single-shot wall-clock measurements, so
    a noise allowance is deliberate).

Exit status is nonzero on the first failed check, so CI can gate on it.
"""

import glob
import json
import os
import re
import sys

REGRESSION_SLACK = 0.20  # fraction a pause may grow PR-over-PR

KERNEL_SECTIONS = ("closure", "lookup", "rtree_probe")


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    sys.exit(1)


def load_artifacts(root):
    arts = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if not m:
            fail(f"{path}: name does not match BENCH_<pr>.json")
        try:
            with open(path) as f:
                rep = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
        if rep.get("pr") != int(m.group(1)):
            fail(f"{path}: pr field {rep.get('pr')!r} disagrees with file name")
        if "bench" not in rep:
            fail(f"{path}: missing bench kind")
        arts.append((int(m.group(1)), os.path.basename(path), rep))
    if not arts:
        fail("no BENCH_*.json artifacts found")
    arts.sort()
    return arts


def validate_shape(name, rep):
    kind = rep["bench"]
    if kind == "tidset":
        if not rep.get("rows"):
            fail(f"{name}: tidset report has no rows")
    elif kind == "shards":
        rows = rep.get("rows")
        if not rows:
            fail(f"{name}: shards report has no rows")
        for row in rows:
            if "shards" not in row or "rebuild_pause_ns" not in row:
                fail(f"{name}: shards row missing shards/rebuild_pause_ns: {row}")
    elif kind == "index":
        for sec in KERNEL_SECTIONS:
            rows = rep.get(sec)
            if not rows:
                fail(f"{name}: index report has no {sec} rows")
            layouts = {r.get("layout") for r in rows}
            if not {"flat", "pointer"} <= layouts:
                fail(f"{name}: {sec} must measure both layouts, got {sorted(layouts)}")
        if not rep.get("consolidation"):
            fail(f"{name}: index report has no consolidation rows")
        if not rep.get("shard_index_build"):
            fail(f"{name}: index report has no shard_index_build rows")
    elif kind == "standing":
        rows = rep.get("rows")
        if not rows:
            fail(f"{name}: standing report has no rows")
        for row in rows:
            for field in ("subscriptions", "batches", "events",
                          "diffs_computed", "notify_p50_ns", "notify_p99_ns",
                          "diff_p50_ns", "remine_p50_ns"):
                if field not in row:
                    fail(f"{name}: standing row missing {field}: {row}")
            if row["notify_p50_ns"] <= 0 or row["notify_p99_ns"] < row["notify_p50_ns"]:
                fail(f"{name}: standing row has a degenerate notify-latency "
                     f"shape (p50 {row['notify_p50_ns']}, p99 {row['notify_p99_ns']})")
            if row["events"] <= 0 or row["diffs_computed"] <= 0:
                fail(f"{name}: standing row delivered no events: {row}")
            ceiling = row["subscriptions"] * row["batches"]
            if row["diffs_computed"] > 2 * ceiling:
                fail(f"{name}: standing row computed {row['diffs_computed']} diffs "
                     f"for only {ceiling} (subscription x batch) pairs")
    elif kind == "advisor":
        validate_advisor(name, rep)
    else:
        fail(f"{name}: unknown bench kind {kind!r}")


# Post-recalibration accuracy may dip on near-tie plan choices (the
# measurements behind "correct" are single-shot wall clocks), and the
# skewed-workload mean absorbs the per-query cost of pricing the extra
# secondary index; both get a noise/overhead allowance. The reclaimed
# differential is the hard claim and gets none.
ACCURACY_SLACK = 0.15          # absolute plan-choice accuracy drop allowed
CALIBRATION_MEAN_SLACK = 1.25  # mean-latency growth allowed after a unit swap
SKEWED_MEAN_SLACK = 1.50       # overall-mean growth allowed after index install


def validate_advisor(name, rep):
    cal = rep.get("calibration")
    if not cal:
        fail(f"{name}: advisor report has no calibration section")
    for field in ("accuracy_before", "accuracy_after", "mean_before_ns",
                  "mean_after_ns", "samples", "guardrail_window",
                  "guardrail_worst_regret", "guardrail_tolerance"):
        if field not in cal:
            fail(f"{name}: calibration section missing {field}")
    if cal["samples"] <= 0:
        fail(f"{name}: recalibration ran on zero timing samples")
    if cal.get("recalibrated"):
        if not cal.get("guardrail_passed"):
            fail(f"{name}: units were swapped without a passing guardrail replay")
        if cal["guardrail_worst_regret"] > cal["guardrail_tolerance"]:
            fail(f"{name}: guardrail worst regret {cal['guardrail_worst_regret']:.3f} "
                 f"exceeds tolerance {cal['guardrail_tolerance']:.3f}")
    if cal["accuracy_after"] < cal["accuracy_before"] - ACCURACY_SLACK:
        fail(f"{name}: plan-choice accuracy collapsed after recalibration "
             f"({cal['accuracy_before']:.3f} -> {cal['accuracy_after']:.3f})")
    if cal["mean_after_ns"] > cal["mean_before_ns"] * CALIBRATION_MEAN_SLACK:
        fail(f"{name}: mean mine latency regressed >{CALIBRATION_MEAN_SLACK - 1:.0%} "
             f"after recalibration ({cal['mean_before_ns']} -> {cal['mean_after_ns']} ns)")
    print(f"check_bench: {name}: recalibration accuracy "
          f"{cal['accuracy_before']:.3f} -> {cal['accuracy_after']:.3f}, guardrail "
          f"worst regret {cal['guardrail_worst_regret']:.3f} "
          f"<= {cal['guardrail_tolerance']:.3f}")

    sk = rep.get("skewed")
    if not sk:
        fail(f"{name}: advisor report has no skewed section")
    for field in ("base_primary", "secondary_primary", "forced_arm",
                  "secondary_wins", "skewed_mean_before_ns", "skewed_mean_after_ns",
                  "reclaimed_mean_before_ns", "reclaimed_mean_after_ns"):
        if field not in sk:
            fail(f"{name}: skewed section missing {field}")
    if sk["forced_arm"] <= 0:
        fail(f"{name}: skewed workload never hit the applicability gate, "
             f"so there was nothing for the advisor to reclaim")
    if not 0 < sk["secondary_primary"] < sk["base_primary"]:
        fail(f"{name}: recommended secondary primary {sk['secondary_primary']} "
             f"does not undercut the base index's {sk['base_primary']}")
    if sk["secondary_wins"] < 1:
        fail(f"{name}: the recommended secondary index won zero queries")
    if sk["reclaimed_mean_after_ns"] >= sk["reclaimed_mean_before_ns"]:
        fail(f"{name}: reclaimed queries did not get faster "
             f"({sk['reclaimed_mean_before_ns']} -> {sk['reclaimed_mean_after_ns']} ns)")
    if sk["skewed_mean_after_ns"] > sk["skewed_mean_before_ns"] * SKEWED_MEAN_SLACK:
        fail(f"{name}: overall skewed mean regressed >{SKEWED_MEAN_SLACK - 1:.0%} "
             f"after index install ({sk['skewed_mean_before_ns']} -> "
             f"{sk['skewed_mean_after_ns']} ns)")
    print(f"check_bench: {name}: secondary at primary "
          f"{sk['secondary_primary']:.3f} won {sk['secondary_wins']} queries, "
          f"reclaimed mean {sk['reclaimed_mean_before_ns']} -> "
          f"{sk['reclaimed_mean_after_ns']} ns")


def kernel_ns(rep, section, layout):
    for row in rep[section]:
        if row["layout"] == layout:
            return row["ns_per_op"]
    return None


def check_flat_wins(name, rep):
    for sec in KERNEL_SECTIONS:
        flat = kernel_ns(rep, sec, "flat")
        ptr = kernel_ns(rep, sec, "pointer")
        if flat > ptr:
            fail(f"{name}: {sec}: flat layout ({flat:.1f} ns/op) is slower than "
                 f"pointer ({ptr:.1f} ns/op)")
        print(f"check_bench: {name}: {sec}: flat {flat:.1f} <= pointer {ptr:.1f} ns/op")


def pauses_of(rep):
    """shard count -> rebuild pause, for any report kind that has them."""
    if rep["bench"] == "shards":
        return {r["shards"]: r["rebuild_pause_ns"] for r in rep["rows"]}
    if rep["bench"] == "index":
        return {r["shards"]: r["rebuild_pause_ns"] for r in rep["consolidation"]}
    return {}


def check_pause_trajectory(arts):
    with_pauses = [(pr, name, pauses_of(rep)) for pr, name, rep in arts if pauses_of(rep)]
    if len(with_pauses) < 2:
        print("check_bench: fewer than two artifacts report consolidation pauses; "
              "trajectory check skipped")
        return
    (_, prev_name, prev), (_, cur_name, cur) = with_pauses[-2], with_pauses[-1]
    shared = sorted(set(prev) & set(cur))
    if not shared:
        fail(f"{cur_name} and {prev_name} share no shard counts; the pause "
             f"trajectory is unverifiable")
    for k in shared:
        limit = prev[k] * (1 + REGRESSION_SLACK)
        if cur[k] > limit:
            fail(f"{cur_name}: K={k} consolidation pause {cur[k]} ns regressed "
                 f">{REGRESSION_SLACK:.0%} over {prev_name} ({prev[k]} ns)")
        print(f"check_bench: K={k}: {cur_name} pause {cur[k]} ns vs "
              f"{prev_name} {prev[k]} ns (limit {limit:.0f})")


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..")
    arts = load_artifacts(root)
    for _, name, rep in arts:
        validate_shape(name, rep)
        if rep["bench"] == "index":
            check_flat_wins(name, rep)
    check_pause_trajectory(arts)
    print(f"check_bench: OK ({len(arts)} artifacts)")


if __name__ == "__main__":
    main()
