// Package core assembles the COLARM framework (paper Figure 2): the
// offline preprocessing phase that builds the MIP-index and its
// statistics, and the online phase in which the cost-based optimizer
// picks one of the six mining plans and the executor runs it.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"colarm/internal/advisor"
	"colarm/internal/cost"
	"colarm/internal/delta"
	"colarm/internal/mip"
	"colarm/internal/obs"
	"colarm/internal/plans"
	"colarm/internal/qerr"
	"colarm/internal/relation"
	"colarm/internal/rtree"
	"colarm/internal/shard"
)

// Options configures engine construction.
type Options struct {
	// PrimarySupport is the offline primary support threshold in (0,1].
	PrimarySupport float64
	// Fanout is the R-tree node capacity (<= 0 selects the default).
	Fanout int
	// Packing selects the R-tree bulk-loading scheme.
	Packing rtree.Packing
	// Layout selects the physical layout of the index layers
	// (mip.FlatLayout by default: contiguous struct-of-arrays slabs;
	// mip.PointerLayout keeps one heap object per node). Rules and
	// statistics are identical for both; only memory layout and speed
	// change.
	Layout mip.Layout
	// CalibrateUnits micro-benchmarks the cost model's unit costs on
	// this machine instead of using defaults.
	CalibrateUnits bool
	// CheckMode selects the record-level support check implementation
	// (AutoCheck, ScanCheck or BitmapCheck). ScanCheck costs are
	// proportional to the focal subset size, matching the paper's cost
	// model; AutoCheck (default) picks the cheaper implementation per
	// query.
	CheckMode plans.CheckMode
	// Workers bounds the goroutines one query fans its parallel
	// operator sections out to: 0 means one per logical CPU, 1 forces
	// serial execution. Results are identical for every setting.
	Workers int
	// Metrics, when non-nil, registers this engine's cumulative metrics
	// in a shared registry; nil gives the engine a private one. All
	// engine metrics are labeled with the dataset name, so engines
	// sharing a registry stay distinguishable (and same-dataset engines
	// aggregate).
	Metrics *obs.Registry
	// AccuracyTol is the regret fraction under which a mispredicted
	// plan choice still counts as correct in the accuracy tracker;
	// <= 0 selects the paper's 5% (§5.1 methodology).
	AccuracyTol float64
	// Shards partitions the records into K hash-routed shards behind
	// the collection seam; queries scatter to all shards in parallel
	// and gather exact recombined results. 0 or 1 leaves the engine
	// monolithic — today's single-partition layout, byte-for-byte.
	Shards int
	// ShardCatalog selects how a sharded engine re-establishes the
	// merged closed-itemset catalog (shard.CatalogAuto by default:
	// cross-shard closure merge on small item spaces, global re-mine on
	// large ones). Ignored when Shards <= 1.
	ShardCatalog shard.CatalogMode
	// Advisor tunes the self-tuning optimizer (online cost
	// recalibration and the workload-driven index advisor); zero values
	// select the documented defaults. The advisor itself is always on —
	// observation is a few ring appends per query — while recalibration
	// swaps and index builds happen only through explicit Recalibrate /
	// ApplyRecommendations calls (or a serving layer's policy loop).
	Advisor advisor.Config
}

// Engine is a ready-to-query COLARM instance over one dataset.
//
// An Engine is safe for concurrent use: Mine, MineWith, Explain,
// BuildQuery and Ingest may be called from any number of goroutines.
// The index is immutable after construction, the executor keeps all
// query state per-call, and the cost model's statistics are
// precomputed; post-build mutability lives entirely in the delta store,
// which synchronizes internally and hands queries immutable merged
// views. The only unsynchronized state is the configuration on the
// exported fields, which must not be mutated while queries are in
// flight.
type Engine struct {
	Index    *mip.Index
	Executor *plans.Executor
	Model    *cost.Model
	// Delta buffers transactions ingested after the index build and
	// serves the merged execution view; queries stay exact while the
	// base index ages. Always non-nil after NewEngine or
	// InitObservability. On a sharded engine it is the collection's
	// wrapped store, so staleness, refresh-policy and snapshot surfaces
	// read identically for both layouts.
	Delta *delta.Store
	// Coll partitions the records across shards when Options.Shards is
	// at least 2; nil on a monolithic engine.
	Coll *shard.Collection

	// Metrics is the engine's cumulative metrics registry (counters and
	// latency histograms, Prometheus-renderable). Recording is atomic;
	// reading may happen concurrently with queries.
	Metrics *obs.Registry
	// Accuracy is the running plan-choice accuracy tracker fed by
	// EvaluatePlans.
	Accuracy *obs.AccuracyTracker
	// Advisor is the self-tuning state: the online cost recalibrator
	// and the workload log behind index recommendations. Non-nil after
	// InitObservability; shared across Rebuild generations so
	// calibration survives engine swaps.
	Advisor *advisor.Advisor

	// secondaries are extra physical MIP-indexes at lower primary
	// supports, installed by the index advisor; the optimizer's argmin
	// spans (plan × index) pairs. Guarded by secMu; the base index
	// stays immutable as ever.
	secMu       sync.RWMutex
	secondaries []*secondaryIndex

	queries      *obs.Counter
	queryErrors  *obs.Counter
	rulesEmitted *obs.Counter
	latency      *obs.Histogram
	chosen       map[plans.Kind]*obs.Counter
	evals        *obs.Counter
	evalsCorrect *obs.Counter

	ingestBatches  *obs.Counter
	ingestRows     *obs.Counter
	ingestDeletes  *obs.Counter
	deltaQueries   *obs.Counter
	rebuilds       *obs.Counter
	rebuildSeconds *obs.Histogram

	recalSwaps  *obs.Counter
	driftMicro  *obs.Gauge
	recsApplied *obs.Counter
	secBuilds   *obs.Counter
	secDrops    *obs.Counter
	secChosen   *obs.Counter

	opts    Options
	dataset string
}

// NewEngine runs the offline phase over the dataset and wires up the
// online executor and optimizer.
func NewEngine(d *relation.Dataset, opts Options) (*Engine, error) {
	buildStart := time.Now()
	idx, err := mip.Build(d, mip.Options{
		PrimarySupport: opts.PrimarySupport,
		Fanout:         opts.Fanout,
		Packing:        opts.Packing,
		Layout:         opts.Layout,
		Workers:        opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	buildDur := time.Since(buildStart)
	units := cost.Units{}
	if opts.CalibrateUnits {
		units = cost.MeasureUnits(d.NumRecords(), d.NumAttrs())
	}
	ex := plans.NewExecutor(idx)
	ex.Mode = opts.CheckMode
	ex.Workers = opts.Workers
	model := cost.NewModel(idx, units)
	model.Mode = opts.CheckMode
	model.Shards = opts.Shards
	e := &Engine{
		Index:    idx,
		Executor: ex,
		Model:    model,
		opts:     opts,
	}
	e.InitObservability(d.Name, opts.Metrics, opts.AccuracyTol)
	e.Delta.SetRebuildCost(buildDur)
	return e, nil
}

// Assemble wires an online engine around an existing index (typically
// a deserialized snapshot), skipping the offline build.
// opts.PrimarySupport should carry the fraction the index was mined at
// so the delta store re-mines merged views at the same threshold; when
// zero, InitObservability recovers an approximation from the stored
// primary count.
func Assemble(idx *mip.Index, opts Options) *Engine {
	units := cost.Units{}
	if opts.CalibrateUnits {
		units = cost.MeasureUnits(idx.Dataset.NumRecords(), idx.Dataset.NumAttrs())
	}
	ex := plans.NewExecutor(idx)
	ex.Mode = opts.CheckMode
	ex.Workers = opts.Workers
	model := cost.NewModel(idx, units)
	model.Mode = opts.CheckMode
	model.Shards = opts.Shards
	e := &Engine{Index: idx, Executor: ex, Model: model, opts: opts}
	e.InitObservability(idx.Dataset.Name, opts.Metrics, opts.AccuracyTol)
	return e
}

// InitObservability wires the engine's cumulative metrics and the
// plan-choice accuracy tracker; NewEngine calls it, and callers that
// assemble an Engine from parts (e.g. a deserialized index) must call
// it before the first query. Every metric carries a dataset label so
// engines sharing one registry aggregate per dataset.
func (e *Engine) InitObservability(dataset string, reg *obs.Registry, accuracyTol float64) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.Metrics = reg
	e.dataset = dataset
	if e.Delta == nil {
		primary := e.opts.PrimarySupport
		if primary <= 0 && e.Index.Dataset.NumRecords() > 0 {
			// Assembled engines (deserialized snapshots) may not carry
			// the original fraction; recover it from the stored count so
			// the merged view re-mines at the same threshold a rebuild
			// would use.
			primary = float64(e.Index.PrimaryCount) / float64(e.Index.Dataset.NumRecords())
		}
		if e.opts.Shards > 1 {
			e.Coll = shard.New(e.Index, shard.Config{
				Shards:  e.opts.Shards,
				Catalog: e.opts.ShardCatalog,
				Primary: primary,
				Units:   e.Model.U,
				Workers: e.opts.Workers,
				MIP: mip.Options{
					PrimarySupport: primary,
					Fanout:         e.opts.Fanout,
					Packing:        e.opts.Packing,
					Layout:         e.opts.Layout,
					Workers:        e.opts.Workers,
				},
			})
			// The collection wraps a plain delta store: ingest routes
			// through the collection (shard clocks), while staleness,
			// refresh policy and snapshots read the store directly.
			e.Delta = e.Coll.Store()
			e.Executor.Coll = e.Coll
			e.Executor.ViewSource = e.Coll.View
		} else {
			e.Delta = delta.NewStore(e.Index, primary, e.Model.U)
			e.Delta.SetWorkers(e.opts.Workers)
			e.Executor.ViewSource = e.Delta.View
		}
	}
	e.Accuracy = obs.NewAccuracyTracker(accuracyTol)
	labels := fmt.Sprintf("dataset=%q", dataset)
	e.queries = reg.CounterWith("colarm_queries_total", labels,
		"Localized mining queries served (including failed ones).")
	e.queryErrors = reg.CounterWith("colarm_query_errors_total", labels,
		"Localized mining queries that failed.")
	e.rulesEmitted = reg.CounterWith("colarm_rules_emitted_total", labels,
		"Rules emitted across all queries.")
	e.latency = reg.Histogram("colarm_query_seconds", labels,
		"End-to-end query execution latency.", nil)
	e.chosen = make(map[plans.Kind]*obs.Counter, len(plans.Kinds()))
	for _, k := range plans.Kinds() {
		e.chosen[k] = reg.CounterWith("colarm_plan_chosen_total",
			labels+`,plan="`+k.String()+`"`,
			"Plans picked by the cost-based optimizer.")
	}
	e.evals = reg.CounterWith("colarm_plan_evaluations_total", labels,
		"Plan choices scored against measured all-plan executions.")
	e.evalsCorrect = reg.CounterWith("colarm_plan_choice_correct_total", labels,
		"Scored plan choices that picked the empirically cheapest plan (within tolerance).")
	e.ingestBatches = reg.CounterWith("colarm_ingest_batches_total", labels,
		"Ingest batches accepted into the delta store.")
	e.ingestRows = reg.CounterWith("colarm_ingest_rows_total", labels,
		"Records inserted through live ingestion.")
	e.ingestDeletes = reg.CounterWith("colarm_ingest_deletes_total", labels,
		"Records tombstoned through live ingestion.")
	e.deltaQueries = reg.CounterWith("colarm_delta_queries_total", labels,
		"Queries answered through the merged base+delta view.")
	e.rebuilds = reg.CounterWith("colarm_rebuilds_total", labels,
		"Full index rebuilds absorbing the delta store.")
	e.rebuildSeconds = reg.Histogram("colarm_rebuild_seconds", labels,
		"Duration of full index rebuilds.", nil)
	if e.Advisor == nil {
		// The static reference the recalibrator measures every bias
		// against is the model's build-time units (defaults or the
		// calibration micro-benchmark's measurements).
		e.Advisor = advisor.New(e.Model.U, e.opts.Advisor)
	}
	e.recalSwaps = reg.CounterWith("colarm_advisor_recalibrations_total", labels,
		"Live cost-unit swaps applied by the online recalibrator.")
	e.driftMicro = reg.GaugeWith("colarm_advisor_drift_micro", labels,
		"Drift score between live units and the evidence's candidate units, in millionths.")
	e.recsApplied = reg.CounterWith("colarm_advisor_recommendations_applied_total", labels,
		"Index-advisor recommendations applied (builds plus drops).")
	e.secBuilds = reg.CounterWith("colarm_secondary_index_builds_total", labels,
		"Secondary MIP-index builds installed beside the base index.")
	e.secDrops = reg.CounterWith("colarm_secondary_index_drops_total", labels,
		"Secondary MIP-indexes dropped.")
	e.secChosen = reg.CounterWith("colarm_secondary_index_chosen_total", labels,
		"Queries the multi-index argmin routed to a secondary index.")
	if e.Coll != nil {
		// Per-shard physical-index observability: one build-duration
		// histogram for the engine plus a rebuild counter per shard, fed
		// by the collection's rebuild hook. Clean shards reuse their
		// cached index, so the counters expose exactly which partitions
		// drift.
		buildHist := reg.Histogram("colarm_shard_index_build_seconds", labels,
			"Duration of per-shard physical index builds (mining + IT-tree + boxes + R-tree).", nil)
		rebuildCtrs := make([]*obs.Counter, e.Coll.NumShards())
		for s := range rebuildCtrs {
			rebuildCtrs[s] = reg.CounterWith("colarm_shard_index_rebuilds_total",
				labels+fmt.Sprintf(",shard=%q", fmt.Sprint(s)),
				"Per-shard physical index rebuilds (drifted shards only; clean shards serve their cache).")
		}
		e.Coll.SetRebuildHook(func(shard int, buildNanos int64) {
			rebuildCtrs[shard].Inc()
			buildHist.Observe(time.Duration(buildNanos))
		})
	}
}

// observe records one executed query in the cumulative metrics.
func (e *Engine) observe(res *plans.Result, err error) {
	e.queries.Inc()
	if err != nil {
		e.queryErrors.Inc()
		return
	}
	e.rulesEmitted.Add(int64(res.Stats.RulesEmitted))
	e.latency.Observe(res.Stats.Duration)
}

// noteDelta charges one successfully executed query's estimated delta
// overhead to the refresh accumulator.
func (e *Engine) noteDelta(q *plans.Query, err error) {
	if err != nil || e.Delta.Empty() {
		return
	}
	e.deltaQueries.Inc()
	e.Delta.NoteQuery(attrsTouched(q))
}

// attrsTouched counts the attributes a query references — restricted
// region dimensions plus permitted item attributes — the width of the
// delta-side counting work the refresh policy prices.
func attrsTouched(q *plans.Query) int {
	if q.ItemAttrs == nil {
		return q.Region.Dims()
	}
	n := 0
	for d := 0; d < q.Region.Dims(); d++ {
		if q.Region.Restricted(d) || q.ItemAttrs[d] {
			n++
		}
	}
	return n
}

// Ingest buffers a batch of inserts and tombstone deletes in the delta
// store. Subsequent queries answer over the merged dataset exactly;
// the returned staleness reports the accumulated drift and whether the
// refresh policy now recommends a rebuild.
func (e *Engine) Ingest(rows [][]int32, deletes []int) (delta.Staleness, error) {
	var st delta.Staleness
	var err error
	if e.Coll != nil {
		st, err = e.Coll.Ingest(rows, deletes)
	} else {
		st, err = e.Delta.Ingest(rows, deletes)
	}
	if err != nil {
		return st, err
	}
	e.ingestBatches.Inc()
	e.ingestRows.Add(int64(len(rows)))
	e.ingestDeletes.Add(int64(len(deletes)))
	return st, nil
}

// Staleness reports the engine's drift from the merged dataset.
func (e *Engine) Staleness() delta.Staleness { return e.Delta.Staleness() }

// ShardStats reports per-shard staleness; nil on a monolithic engine.
func (e *Engine) ShardStats() []shard.ShardStat {
	if e.Coll == nil {
		return nil
	}
	return e.Coll.ShardStats()
}

// Rebuild runs the offline phase over the merged dataset — base records
// minus tombstones plus buffered inserts — and returns a fresh engine
// with an empty delta, sharing this engine's metrics registry. The
// receiver is untouched and remains queryable throughout, so a serving
// layer can rebuild in the background and atomically swap engines when
// done.
func (e *Engine) Rebuild(ctx context.Context) (*Engine, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.Coll != nil {
		// Sharded engines consolidate instead of compacting: record ids
		// must stay stable for the hash routing, so deleted rows become
		// ghosts outside the new index's Live mask. Clean shards reuse
		// their cached catalog minings — only drifted shards re-mine —
		// and this engine serves throughout.
		start := time.Now()
		idx, err := e.Coll.Consolidate()
		if err != nil {
			return nil, err
		}
		opts := e.opts
		opts.Metrics = e.Metrics
		fresh := Assemble(idx, opts)
		fresh.Advisor = e.Advisor
		fresh.Delta.SetRebuildCost(time.Since(start))
		e.rebuilds.Inc()
		e.rebuildSeconds.Observe(time.Since(start))
		return fresh, nil
	}
	merged, err := e.Delta.MergedDataset()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	opts := e.opts
	opts.Metrics = e.Metrics
	fresh, err := NewEngine(merged, opts)
	if err != nil {
		return nil, err
	}
	// Calibration and the workload log survive the swap; secondary
	// indexes do not — they were mined over the pre-rebuild surface and
	// the advisor will recommend rebuilding any that still pay.
	fresh.Advisor = e.Advisor
	e.rebuilds.Inc()
	e.rebuildSeconds.Observe(time.Since(start))
	return fresh, nil
}

// Mine answers a localized mining query with the plan the COLARM
// optimizer selects; the estimates for all six plans are returned for
// inspection.
func (e *Engine) Mine(q *plans.Query) (*plans.Result, []cost.Estimate, error) {
	return e.MineContext(context.Background(), q)
}

// MineContext is Mine under a context: a cancelled or timed-out context
// aborts the chosen plan mid-operator and returns ctx.Err().
func (e *Engine) MineContext(ctx context.Context, q *plans.Query) (*plans.Result, []cost.Estimate, error) {
	if err := q.Validate(e.Index); err != nil {
		e.queries.Inc()
		e.queryErrors.Inc()
		return nil, nil, err
	}
	ch := e.choose(q)
	e.chosen[ch.kind].Inc()
	res, err := ch.executor(e).RunContext(ctx, ch.kind, q)
	e.observe(res, err)
	e.noteDelta(q, err)
	if err != nil {
		return nil, ch.ests, err
	}
	e.noteAdvisor(q, ch, res)
	return res, ch.ests, nil
}

// MineWith bypasses the optimizer and executes a specific plan.
func (e *Engine) MineWith(kind plans.Kind, q *plans.Query) (*plans.Result, error) {
	return e.MineWithContext(context.Background(), kind, q)
}

// MineWithContext is MineWith under a context (see MineContext).
func (e *Engine) MineWithContext(ctx context.Context, kind plans.Kind, q *plans.Query) (*plans.Result, error) {
	res, err := e.Executor.RunContext(ctx, kind, q)
	e.observe(res, err)
	e.noteDelta(q, err)
	return res, err
}

// PlanMeasurement pairs one plan's predicted model cost with its
// measured execution time for one query.
type PlanMeasurement struct {
	Plan      plans.Kind
	Predicted float64 // model cost (nanosecond scale)
	Measured  time.Duration
}

// ChoiceEvaluation scores the optimizer's decision for one query
// against ground truth obtained by executing all six plans.
type ChoiceEvaluation struct {
	Chosen  plans.Kind // the optimizer's pick
	Best    plans.Kind // the empirically cheapest plan
	Regret  float64    // extra-cost fraction of Chosen over Best (0 on a hit)
	Correct bool       // Chosen == Best, or Regret within the tracker tolerance
	Plans   []PlanMeasurement
}

// EvaluatePlans replays the optimizer's decision for a query against
// ground truth: it executes every plan, measures each one, scores the
// choice against the empirically cheapest plan, and feeds the engine's
// running Accuracy tracker — the paper's §5.1 predicted-vs-measured
// study as an online measurement. The evaluation runs untraced so the
// measured times are clean; expect roughly 6x one query's cost.
func (e *Engine) EvaluatePlans(q *plans.Query) (*ChoiceEvaluation, error) {
	if err := q.Validate(e.Index); err != nil {
		return nil, err
	}
	qc := *q
	qc.Trace = nil
	ch := e.choose(&qc)
	ev := &ChoiceEvaluation{Chosen: ch.kind}
	var chosenT, bestT time.Duration
	measured := make([]time.Duration, 0, len(ch.ests))
	for _, est := range ch.ests {
		res, err := e.Executor.Run(est.Plan, &qc)
		if err != nil {
			return nil, err
		}
		d := res.Stats.Duration
		ev.Plans = append(ev.Plans, PlanMeasurement{Plan: est.Plan, Predicted: est.Total, Measured: d})
		measured = append(measured, d)
		if len(ev.Plans) == 1 || d < bestT {
			bestT, ev.Best = d, est.Plan
		}
		if est.Plan == ch.kind {
			chosenT = d
		}
	}
	if ev.Best != ev.Chosen && bestT > 0 {
		ev.Regret = float64(chosenT-bestT) / float64(bestT)
	}
	ev.Correct = e.Accuracy.Record(ev.Best == ev.Chosen, ev.Regret)
	e.evals.Inc()
	if ev.Correct {
		e.evalsCorrect.Inc()
	}
	e.noteChoiceEvaluation(&qc, ch, measured)
	return ev, nil
}

// Explain returns the optimizer's choice and per-plan estimates without
// executing anything.
func (e *Engine) Explain(q *plans.Query) (plans.Kind, []cost.Estimate, error) {
	return e.ExplainContext(context.Background(), q)
}

// ExplainContext is Explain under a context. Cost estimation itself is
// a few statistics probes, so the context is only consulted at entry —
// an expired deadline still fails fast, matching MineContext.
func (e *Engine) ExplainContext(ctx context.Context, q *plans.Query) (plans.Kind, []cost.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if err := q.Validate(e.Index); err != nil {
		return 0, nil, err
	}
	kind, ests := e.choosePlan(q)
	return kind, ests, nil
}

// choosePlan runs the cost-based optimizer and applies the paper's
// applicability condition: the argmin is honored only when the
// prestored CFIs can answer the query completely. When the localized
// threshold over the executor's current surface falls below the
// primary-support count, every MIP-backed plan would silently drop
// rules that are frequent only inside the focal subset, so the choice
// is overridden to ARM — completeness outranks the cost estimate —
// unless a fresh secondary index at a lower primary support reclaims
// the query (see choose in advisor.go for the multi-index argmin).
func (e *Engine) choosePlan(q *plans.Query) (plans.Kind, []cost.Estimate) {
	ch := e.choose(q)
	return ch.kind, ch.ests
}

// QuerySpec is a plan-agnostic description of a mining request using
// dataset vocabulary (attribute names and value labels), as produced by
// the query-language parser or constructed directly by library users.
type QuerySpec struct {
	// Range maps attribute names to selected value labels (the WHERE
	// RANGE clause); attributes absent from the map span their domain.
	Range map[string][]string
	// ItemAttrs lists the attributes allowed in rule bodies (the ITEM
	// ATTRIBUTES clause); empty means all.
	ItemAttrs []string
	// MinSupport and MinConfidence are the HAVING thresholds.
	MinSupport    float64
	MinConfidence float64
	// MaxConsequent caps rule consequent length (0 = unlimited).
	MaxConsequent int
}

// BuildQuery resolves a QuerySpec against the engine's dataset into an
// executable query.
func (e *Engine) BuildQuery(spec *QuerySpec) (*plans.Query, error) {
	reg, err := e.Index.RegionFromSelections(spec.Range)
	if err != nil {
		return nil, err
	}
	var mask []bool
	if len(spec.ItemAttrs) > 0 {
		mask = make([]bool, e.Index.Space.NumAttrs())
		for _, name := range spec.ItemAttrs {
			ai := e.Index.Dataset.AttrIndex(name)
			if ai < 0 {
				return nil, fmt.Errorf("core: %w: item attribute %q", qerr.ErrUnknownAttribute, name)
			}
			mask[ai] = true
		}
	}
	return &plans.Query{
		Region:        reg,
		ItemAttrs:     mask,
		MinSupport:    spec.MinSupport,
		MinConfidence: spec.MinConfidence,
		MaxConsequent: spec.MaxConsequent,
	}, nil
}
