// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5). It is shared by the
// colarm-bench command and the repository's Go benchmarks.
//
// Experiment index (see DESIGN.md):
//
//	E1  Figure 8   closed-frequent-itemset counts vs primary threshold
//	E2  Figure 9   plan execution costs, chess grid
//	E3  Figure 10  plan execution costs, mushroom grid
//	E4  Figure 11  plan execution costs, PUMSB grid
//	E5  §5.1       optimizer plan-selection accuracy over 108 scenarios
//	E6  Figure 12  % gains of the optimized plans over S-E-V
//	E7  Figure 13  fresh-local vs repeated-global CFI counts
//	E8  §5.3       Simpson's-paradox anecdote on mushroom
package bench

import (
	"fmt"
	"math/rand"

	"colarm/internal/bitset"
	"colarm/internal/core"
	"colarm/internal/datagen"
	"colarm/internal/itemset"
	"colarm/internal/obs"
	"colarm/internal/plans"
	"colarm/internal/relation"
)

// DatasetSpec binds a generated dataset to the paper's experimental
// parameters for it.
type DatasetSpec struct {
	Name    string
	Config  datagen.Config
	Primary float64 // primary support for the MIP-index

	// The minsupport values of the dataset's plan-cost figure
	// (Figures 9-11) and the shared minconfidence values.
	MinSupps []float64
	MinConfs []float64
	// DQFracs are the focal subset sizes as fractions of the dataset.
	DQFracs []float64
	// GlobalMinSupp is the "reasonable global minsupport" used to
	// classify fresh-local vs repeated-global CFIs in Figure 13.
	GlobalMinSupp float64
	// Fig8Sweep lists the primary thresholds of the Figure 8 curve.
	Fig8Sweep []float64
}

// Specs returns the three benchmark dataset specifications. With
// full=true the paper-scale parameters are used; otherwise a reduced
// profile that keeps `go test -bench` runs short (smaller record counts
// and slightly higher thresholds; the qualitative shapes are
// preserved).
func Specs(full bool, seed int64) []DatasetSpec {
	chess := DatasetSpec{
		Name:          "chess",
		Config:        datagen.ChessConfig(seed),
		Primary:       0.60,
		MinSupps:      []float64{0.80, 0.85, 0.90},
		MinConfs:      []float64{0.85, 0.90, 0.95},
		DQFracs:       []float64{0.50, 0.20, 0.10, 0.01},
		GlobalMinSupp: 0.80,
		Fig8Sweep:     []float64{0.90, 0.80, 0.70, 0.60},
	}
	mushroom := DatasetSpec{
		Name:          "mushroom",
		Config:        datagen.MushroomConfig(seed),
		Primary:       0.05,
		MinSupps:      []float64{0.70, 0.75, 0.80},
		MinConfs:      []float64{0.85, 0.90, 0.95},
		DQFracs:       []float64{0.50, 0.20, 0.10, 0.01},
		GlobalMinSupp: 0.60,
		Fig8Sweep:     []float64{0.40, 0.20, 0.10, 0.05},
	}
	pumsb := DatasetSpec{
		Name:          "pumsb",
		Config:        datagen.PUMSBConfig(seed),
		Primary:       0.80,
		MinSupps:      []float64{0.85, 0.88, 0.91},
		MinConfs:      []float64{0.85, 0.90, 0.95},
		DQFracs:       []float64{0.50, 0.20, 0.10, 0.01},
		GlobalMinSupp: 0.85,
		Fig8Sweep:     []float64{0.95, 0.90, 0.85, 0.80},
	}
	if !full {
		chess.Config = datagen.Scaled(chess.Config, 0.5)
		chess.Primary = 0.70
		chess.MinSupps = []float64{0.80, 0.85, 0.90}
		chess.Fig8Sweep = []float64{0.90, 0.85, 0.80, 0.75, 0.70}

		mushroom.Config = datagen.Scaled(mushroom.Config, 0.5)
		mushroom.Primary = 0.10
		mushroom.Fig8Sweep = []float64{0.40, 0.30, 0.20, 0.10}

		pumsb.Config = datagen.Scaled(pumsb.Config, 0.15)
		pumsb.Primary = 0.88
		pumsb.MinSupps = []float64{0.92, 0.94, 0.96}
		pumsb.GlobalMinSupp = 0.92
		pumsb.Fig8Sweep = []float64{0.96, 0.94, 0.92, 0.90, 0.88}
	}
	return []DatasetSpec{chess, mushroom, pumsb}
}

// SpecByName finds a spec by dataset name.
func SpecByName(specs []DatasetSpec, name string) (DatasetSpec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("bench: unknown dataset %q", name)
}

// Env is a prepared experimental environment: the generated dataset and
// the engine with its MIP-index built at the spec's primary support.
type Env struct {
	Spec    DatasetSpec
	Dataset *relation.Dataset
	Engine  *core.Engine
}

// Setup generates the dataset and builds the engine.
func Setup(spec DatasetSpec) (*Env, error) {
	return SetupWith(spec, nil)
}

// SetupWith is Setup with the engine's metrics registered in a shared
// registry (nil gives the engine a private one), so one scrape endpoint
// can expose every benchmark dataset's counters side by side.
func SetupWith(spec DatasetSpec, reg *obs.Registry) (*Env, error) {
	d, err := datagen.Generate(spec.Config)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(d, core.Options{
		PrimarySupport: spec.Primary,
		CalibrateUnits: true,
		// The paper's record-level checks scan the focal subset, so
		// their cost — and the figures' |D^Q| scaling — follows
		// ScanCheck semantics.
		CheckMode: plans.ScanCheck,
		Metrics:   reg,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Spec: spec, Dataset: d, Engine: eng}, nil
}

// RandomFocalSubset builds a region whose record count approximates
// frac·m by greedily restricting random attributes to contiguous value
// windows, mirroring the paper's methodology of submitting fixed-size
// focal subsets over different areas of the dataset.
func (e *Env) RandomFocalSubset(rng *rand.Rand, frac float64) *itemset.Region {
	idx := e.Engine.Index
	m := e.Dataset.NumRecords()
	target := int(frac * float64(m))
	if target < 1 {
		target = 1
	}
	reg := itemset.RegionFor(idx.Space)
	cur := bitset.New(m)
	cur.Fill()
	curSize := m

	attrs := rng.Perm(idx.Space.NumAttrs())
	for _, a := range attrs {
		if curSize <= target*3/2 {
			break
		}
		card := idx.Space.Cardinality(a)
		if card < 2 {
			continue
		}
		// Count, per value of a, the records of the current subset.
		counts := make([]int, card)
		for v := 0; v < card; v++ {
			counts[v] = bitset.AndCount(cur, idx.Tidsets[idx.Space.ItemOf(a, v)])
		}
		// Choose the contiguous window whose sum lands closest to the
		// target (bounded below by it when possible), starting from a
		// random offset for variety.
		bestLo, bestHi, bestSum := -1, -1, -1
		start := rng.Intn(card)
		for off := 0; off < card; off++ {
			lo := (start + off) % card
			sum := 0
			for hi := lo; hi < card; hi++ {
				sum += counts[hi]
				if sum == 0 {
					continue
				}
				if better(sum, bestSum, target) {
					bestLo, bestHi, bestSum = lo, hi, sum
				}
			}
		}
		if bestLo < 0 || bestSum == curSize {
			continue
		}
		vals := make([]int, 0, bestHi-bestLo+1)
		dim := bitset.New(m)
		for v := bestLo; v <= bestHi; v++ {
			vals = append(vals, v)
			dim.Or(idx.Tidsets[idx.Space.ItemOf(a, v)])
		}
		if err := reg.Restrict(a, vals); err != nil {
			continue // cannot happen; defensive
		}
		cur.And(dim)
		curSize = cur.Count()
		if curSize == 0 {
			break
		}
	}
	return reg
}

// better prefers sums at or above target but close to it; below-target
// sums are acceptable when nothing above target exists.
func better(sum, best, target int) bool {
	if best < 0 {
		return true
	}
	da, db := distance(sum, target), distance(best, target)
	return da < db
}

func distance(sum, target int) int {
	d := sum - target
	if d < 0 {
		// Undershooting is penalized slightly more than overshooting so
		// subsets stay non-degenerate.
		return -d * 2
	}
	return d
}

// QueryFor assembles an executable query for a region and thresholds.
// Consequents are capped at one item — the classic rule form — so the
// measured costs reflect the operators rather than an unbounded
// combinatorial rule expansion on degenerate (near-homogeneous) focal
// subsets.
func (e *Env) QueryFor(reg *itemset.Region, minSupp, minConf float64) *plans.Query {
	return &plans.Query{
		Region:        reg,
		MinSupport:    minSupp,
		MinConfidence: minConf,
		MaxConsequent: 1,
	}
}
