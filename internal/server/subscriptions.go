package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"colarm"
	"colarm/internal/standing"
)

// subscribeRequest is the JSON body of POST /v1/subscriptions: the
// same query shape as /v1/mine (structured fields or a COLARM-QL
// statement) plus an optional tracked-measure threshold.
type subscribeRequest struct {
	Dataset        string              `json:"dataset"`
	QL             string              `json:"ql,omitempty"`
	Range          map[string][]string `json:"range,omitempty"`
	ItemAttributes []string            `json:"itemAttributes,omitempty"`
	MinSupport     float64             `json:"minSupport,omitempty"`
	MinConfidence  float64             `json:"minConfidence,omitempty"`
	MaxConsequent  int                 `json:"maxConsequent,omitempty"`
	Plan           string              `json:"plan,omitempty"`
	Track          *trackJSON          `json:"track,omitempty"`
}

type trackJSON struct {
	Measure   string  `json:"measure"`
	Threshold float64 `json:"threshold"`
}

// subscriptionJSON describes one subscription resource.
type subscriptionJSON struct {
	ID      string     `json:"id"`
	Dataset string     `json:"dataset"`
	Query   string     `json:"query"` // canonical form
	Track   *trackJSON `json:"track,omitempty"`
	// Events is the subscription's event-stream path.
	Events string `json:"events"`
	// Generation and Version locate the dataset when the response was
	// built (Generation is the registry generation, as on /v1/mine).
	Generation uint64 `json:"generation"`
	Version    uint64 `json:"version"`
}

func (s *Server) subscriptionJSON(sub *standing.Subscription) subscriptionJSON {
	out := subscriptionJSON{
		ID:      sub.ID(),
		Dataset: sub.Dataset(),
		Query:   sub.Query().Canonical(),
		Events:  "/v1/subscriptions/" + sub.ID() + "/events",
	}
	if tr := sub.Track(); tr != nil {
		out.Track = &trackJSON{Measure: tr.Measure, Threshold: tr.Threshold}
	}
	if eng, gen, err := s.reg.Get(sub.Dataset()); err == nil {
		out.Generation = gen
		out.Version = eng.Version()
	}
	return out
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.requests["subscriptions"].Inc()
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.fail(w, "subscriptions", badRequestError{fmt.Errorf("reading body: %w", err)})
		return
	}
	var req subscribeRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, "subscriptions", badRequestError{fmt.Errorf("decoding JSON body: %w", err)})
		return
	}
	eng, _, q, err := s.resolve(&mineRequest{
		Dataset:        req.Dataset,
		QL:             req.QL,
		Range:          req.Range,
		ItemAttributes: req.ItemAttributes,
		MinSupport:     req.MinSupport,
		MinConfidence:  req.MinConfidence,
		MaxConsequent:  req.MaxConsequent,
		Plan:           req.Plan,
	})
	if err != nil {
		s.fail(w, "subscriptions", err)
		return
	}
	var track *standing.Track
	if req.Track != nil {
		track = &standing.Track{Measure: req.Track.Measure, Threshold: req.Track.Threshold}
	}
	sub, err := s.standing.Create(r.Context(), eng.Dataset().Name(), q, track)
	if err != nil {
		s.fail(w, "subscriptions", err)
		return
	}
	w.Header().Set("Location", "/v1/subscriptions/"+sub.ID())
	s.writeJSON(w, http.StatusCreated, s.subscriptionJSON(sub))
}

func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	s.requests["subscriptions"].Inc()
	subs := s.standing.List()
	out := make([]subscriptionJSON, 0, len(subs))
	for _, sub := range subs {
		out = append(out, s.subscriptionJSON(sub))
	}
	s.writeJSON(w, http.StatusOK, struct {
		Subscriptions []subscriptionJSON `json:"subscriptions"`
	}{out})
}

func (s *Server) handleSubscriptionGet(w http.ResponseWriter, r *http.Request) {
	s.requests["subscriptions"].Inc()
	sub := s.standing.Get(r.PathValue("id"))
	if sub == nil {
		s.fail(w, "subscriptions", notFoundError{fmt.Errorf("no subscription %q", r.PathValue("id"))})
		return
	}
	s.writeJSON(w, http.StatusOK, s.subscriptionJSON(sub))
}

func (s *Server) handleSubscriptionDelete(w http.ResponseWriter, r *http.Request) {
	s.requests["subscriptions"].Inc()
	if !s.standing.Delete(r.PathValue("id")) {
		s.fail(w, "subscriptions", notFoundError{fmt.Errorf("no subscription %q", r.PathValue("id"))})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// eventJSON is the wire form of a standing.Event, with rules rendered
// like /v1/mine renders them.
type eventJSON struct {
	Seq         uint64         `json:"seq"`
	Type        string         `json:"type"`
	Dataset     string         `json:"dataset"`
	Generation  uint64         `json:"generation"`
	FromVersion uint64         `json:"fromVersion"`
	ToVersion   uint64         `json:"toVersion"`
	Rules       []ruleJSON     `json:"rules,omitempty"`
	Appeared    []ruleJSON     `json:"appeared,omitempty"`
	Disappeared []ruleJSON     `json:"disappeared,omitempty"`
	Updated     []ruleJSON     `json:"updated,omitempty"`
	Crossed     []crossingJSON `json:"crossed,omitempty"`
	Reason      string         `json:"reason,omitempty"`
}

type crossingJSON struct {
	Rule      ruleJSON `json:"rule"`
	Measure   string   `json:"measure"`
	Threshold float64  `json:"threshold"`
	Direction string   `json:"direction"`
	Previous  float64  `json:"previous"`
	Current   float64  `json:"current"`
}

func toEventJSON(ev standing.Event) eventJSON {
	out := eventJSON{
		Seq:         ev.Seq,
		Type:        ev.Type,
		Dataset:     ev.Dataset,
		Generation:  ev.Generation,
		FromVersion: ev.FromVersion,
		ToVersion:   ev.ToVersion,
		Rules:       rulesJSON(ev.Rules),
		Appeared:    rulesJSON(ev.Appeared),
		Disappeared: rulesJSON(ev.Disappeared),
		Updated:     rulesJSON(ev.Updated),
		Reason:      ev.Reason,
	}
	if len(ev.Rules) == 0 {
		out.Rules = nil
	}
	for _, cr := range ev.Crossed {
		out.Crossed = append(out.Crossed, crossingJSON{
			Rule:      rulesJSON([]colarm.Rule{cr.Rule})[0],
			Measure:   cr.Measure,
			Threshold: cr.Threshold,
			Direction: cr.Direction,
			Previous:  cr.Previous,
			Current:   cr.Current,
		})
	}
	return out
}

// handleSubscriptionEvents streams a subscription's events. With a
// "wait" query parameter it long-polls: one JSON response with the
// events past "after" (empty after the wait expires). Otherwise it is
// an SSE stream: each event is written as id/event/data frames, the
// Last-Event-ID header (or "after") resumes a broken connection, and a
// consumer that falls off the bounded buffer receives a terminal
// "evicted" event before the stream closes. A resume position that has
// aged out of the buffer yields a fresh snapshot event (resync), never
// a silent gap.
func (s *Server) handleSubscriptionEvents(w http.ResponseWriter, r *http.Request) {
	s.requests["events"].Inc()
	sub := s.standing.Get(r.PathValue("id"))
	if sub == nil {
		s.fail(w, "events", notFoundError{fmt.Errorf("no subscription %q", r.PathValue("id"))})
		return
	}
	after := uint64(0)
	pos := r.Header.Get("Last-Event-ID")
	if pos == "" {
		pos = r.URL.Query().Get("after")
	}
	if pos != "" {
		v, err := strconv.ParseUint(pos, 10, 64)
		if err != nil {
			s.fail(w, "events", badRequestError{fmt.Errorf("bad resume position %q: %w", pos, err)})
			return
		}
		after = v
	}

	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		s.longPoll(w, sub, after, waitStr)
		return
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, "events", fmt.Errorf("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	c := sub.Cursor(after)
	for {
		hctx, cancel := context.WithTimeout(ctx, s.cfg.SSEHeartbeat)
		evs, err := c.Next(hctx)
		cancel()
		for _, ev := range evs {
			if s.sseDelay > 0 {
				// Test knob: simulate a slow consumer so eviction paths
				// can be exercised deterministically.
				time.Sleep(s.sseDelay)
			}
			data, merr := json.Marshal(toEventJSON(ev))
			if merr != nil {
				return
			}
			if _, werr := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); werr != nil {
				return
			}
		}
		fl.Flush()
		switch {
		case err == nil:
			continue
		case errors.Is(err, standing.ErrEvicted), errors.Is(err, standing.ErrClosed):
			// Terminal: the evicted event (if any) is already written.
			return
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// Heartbeat keep-alive comment so intermediaries don't cut
			// an idle stream.
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		default:
			// Client disconnected.
			return
		}
	}
}

// longPoll answers one GET with the buffered events past `after`,
// waiting up to the requested duration for the first one.
func (s *Server) longPoll(w http.ResponseWriter, sub *standing.Subscription, after uint64, waitStr string) {
	wait, err := time.ParseDuration(waitStr)
	if err != nil {
		s.fail(w, "events", badRequestError{fmt.Errorf("bad wait %q: %w", waitStr, err)})
		return
	}
	if wait < 0 {
		wait = 0
	}
	if max := s.cfg.QueryTimeout; max > 0 && wait > max {
		wait = max
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	evs, err := sub.Cursor(after).Next(ctx)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, standing.ErrClosed) && !errors.Is(err, standing.ErrEvicted) {
		s.fail(w, "events", err)
		return
	}
	out := make([]eventJSON, 0, len(evs))
	for _, ev := range evs {
		out = append(out, toEventJSON(ev))
	}
	s.writeJSON(w, http.StatusOK, struct {
		Subscription string      `json:"subscription"`
		Events       []eventJSON `json:"events"`
	}{sub.ID(), out})
}
