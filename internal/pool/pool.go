// Package pool is the worker pool shared by the parallel layers of the
// engine: the plans operators (ELIMINATE/VERIFY fan-out), the MIP-index
// assembler (per-CFI bounding boxes), and the sharded collection
// (per-shard mining and index builds during consolidation).
//
// Work is distributed dynamically through an atomic cursor rather than
// by static striding, so uneven item costs — tidsets of wildly different
// density, shards with different drift — cannot idle a worker. The
// contract every caller relies on for determinism is that fn(i) is
// called exactly once per index and that callers land results in
// pre-indexed slots, so the merged output is independent of schedule and
// of the worker count.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0,n) across at most workers goroutines.
// With workers <= 1 (or nothing to parallelize) it degrades to the plain
// serial loop, in index order. It returns the number of goroutines
// actually used (1 for the serial path).
func For(n, workers int, fn func(i int)) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return workers
}

// ForCtx is For with cooperative cancellation: every worker (and the
// serial path) polls ctx between items and stops claiming work once the
// context is done. It returns ctx.Err() when the context fired before
// all n items completed; items already started still finish (fn is never
// interrupted mid-call), so callers must discard partial output on
// error.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) (int, error) {
	done := ctx.Done()
	if done == nil {
		return For(n, workers, fn), nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return 1, ctx.Err()
			default:
			}
			fn(i)
		}
		return 1, nil
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return workers, ctx.Err()
}

// Workers resolves a worker-count knob: 0 (or negative) means one worker
// per logical CPU, 1 forces the serial path.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
