package colarmql

import (
	"fmt"
	"strconv"
	"strings"
)

// RangeClause selects values for one range attribute.
type RangeClause struct {
	Attr   string
	Values []string
}

// Statement is a parsed localized mining query.
type Statement struct {
	Dataset       string
	Range         []RangeClause
	ItemAttrs     []string
	MinSupport    float64
	MinConfidence float64
	Plan          string // optional USING PLAN clause; empty = optimizer
}

// Parse parses one query statement. The trailing semicolon is optional.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// keyword consumes a case-insensitive keyword word, or errors.
func (p *parser) keyword(kw string) error {
	t := p.cur()
	if t.kind != tokWord || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("colarmql: expected %q at offset %d, found %q", kw, t.pos, t.text)
	}
	p.i++
	return nil
}

// peekKeyword reports whether the current token is the given keyword.
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokWord && strings.EqualFold(t.text, kw)
}

func (p *parser) punct(ch string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != ch {
		return fmt.Errorf("colarmql: expected %q at offset %d, found %q", ch, t.pos, t.text)
	}
	p.i++
	return nil
}

func (p *parser) peekPunct(ch string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == ch
}

// name consumes an identifier (word or quoted string).
func (p *parser) name(what string) (string, error) {
	t := p.cur()
	if t.kind == tokWord || t.kind == tokString || t.kind == tokNumber && !strings.HasSuffix(t.text, "%") {
		p.i++
		return t.text, nil
	}
	return "", fmt.Errorf("colarmql: expected %s at offset %d, found %q", what, t.pos, t.text)
}

// number consumes a numeric literal; "70%" becomes 0.70, and plain
// values above 1 are also treated as percentages for convenience.
func (p *parser) number(what string) (float64, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("colarmql: expected %s at offset %d, found %q", what, t.pos, t.text)
	}
	p.i++
	text := t.text
	pct := strings.HasSuffix(text, "%")
	text = strings.TrimSuffix(text, "%")
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, fmt.Errorf("colarmql: bad %s %q at offset %d", what, t.text, t.pos)
	}
	if pct || f > 1 {
		f /= 100
	}
	return f, nil
}

func (p *parser) statement() (*Statement, error) {
	st := &Statement{}
	for _, kw := range []string{"REPORT", "LOCALIZED", "ASSOCIATION", "RULES", "FROM"} {
		if err := p.keyword(kw); err != nil {
			return nil, err
		}
	}
	ds, err := p.name("dataset name")
	if err != nil {
		return nil, err
	}
	st.Dataset = ds

	if p.peekKeyword("WHERE") {
		p.i++
		if err := p.keyword("RANGE"); err != nil {
			return nil, err
		}
		if err := p.rangeClauses(st); err != nil {
			return nil, err
		}
	}
	// Optional: AND ITEM ATTRIBUTES a, b, c
	if p.peekKeyword("AND") && p.toks[p.i+1].kind == tokWord && strings.EqualFold(p.toks[p.i+1].text, "ITEM") {
		p.i++ // AND
		if err := p.keyword("ITEM"); err != nil {
			return nil, err
		}
		if err := p.keyword("ATTRIBUTES"); err != nil {
			return nil, err
		}
		for {
			a, err := p.name("item attribute")
			if err != nil {
				return nil, err
			}
			st.ItemAttrs = append(st.ItemAttrs, a)
			if !p.peekPunct(",") {
				break
			}
			p.i++
		}
	}
	if err := p.keyword("HAVING"); err != nil {
		return nil, err
	}
	if err := p.keyword("MINSUPPORT"); err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	if st.MinSupport, err = p.number("minsupport"); err != nil {
		return nil, err
	}
	if err := p.keyword("AND"); err != nil {
		return nil, err
	}
	if err := p.keyword("MINCONFIDENCE"); err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	if st.MinConfidence, err = p.number("minconfidence"); err != nil {
		return nil, err
	}
	// Optional: USING PLAN <name>
	if p.peekKeyword("USING") {
		p.i++
		if err := p.keyword("PLAN"); err != nil {
			return nil, err
		}
		plan, err := p.name("plan name")
		if err != nil {
			return nil, err
		}
		st.Plan = plan
	}
	if p.peekPunct(";") {
		p.i++
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("colarmql: unexpected trailing input %q at offset %d", t.text, t.pos)
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// rangeClauses parses attr = (v1, v2), attr2 = (v3), ...
func (p *parser) rangeClauses(st *Statement) error {
	for {
		attr, err := p.name("range attribute")
		if err != nil {
			return err
		}
		if err := p.punct("="); err != nil {
			return err
		}
		if err := p.punct("("); err != nil {
			return err
		}
		rc := RangeClause{Attr: attr}
		for {
			v, err := p.name("range value")
			if err != nil {
				return err
			}
			rc.Values = append(rc.Values, v)
			if p.peekPunct(",") {
				p.i++
				continue
			}
			break
		}
		if err := p.punct(")"); err != nil {
			return err
		}
		st.Range = append(st.Range, rc)
		// Another clause only if a comma follows and the next token is
		// not a keyword that starts the next section.
		if p.peekPunct(",") {
			p.i++
			continue
		}
		return nil
	}
}

func (st *Statement) validate() error {
	if st.Dataset == "" {
		return fmt.Errorf("colarmql: missing dataset name")
	}
	if st.MinSupport <= 0 || st.MinSupport > 1 {
		return fmt.Errorf("colarmql: minsupport %v outside (0,1]", st.MinSupport)
	}
	if st.MinConfidence < 0 || st.MinConfidence > 1 {
		return fmt.Errorf("colarmql: minconfidence %v outside [0,1]", st.MinConfidence)
	}
	seen := map[string]bool{}
	for _, rc := range st.Range {
		key := strings.ToLower(rc.Attr)
		if seen[key] {
			return fmt.Errorf("colarmql: duplicate range attribute %q", rc.Attr)
		}
		seen[key] = true
		if len(rc.Values) == 0 {
			return fmt.Errorf("colarmql: range attribute %q selects no values", rc.Attr)
		}
	}
	return nil
}

// reserved holds the language's keywords (lower-cased); rendered bare
// they could terminate the clause they appear in, so String quotes
// them when they occur as names or values.
var reserved = map[string]bool{
	"report": true, "localized": true, "association": true, "rules": true,
	"from": true, "where": true, "range": true, "item": true,
	"attributes": true, "having": true, "minsupport": true,
	"minconfidence": true, "and": true, "using": true, "plan": true,
}

// quoteName renders an identifier or value so it lexes back to itself:
// bare when every byte is a word byte and the word is not a keyword,
// single-quoted (with \-escapes for the quote and backslash) otherwise.
func quoteName(s string) string {
	bare := s != "" && !reserved[strings.ToLower(s)]
	for i := 0; bare && i < len(s); i++ {
		if !isWordByte(s[i]) {
			bare = false
		}
	}
	if bare {
		return s
	}
	var b strings.Builder
	b.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\'' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('\'')
	return b.String()
}

func quoteNames(vals []string) string {
	quoted := make([]string, len(vals))
	for i, v := range vals {
		quoted[i] = quoteName(v)
	}
	return strings.Join(quoted, ", ")
}

// String renders the statement back to query-language text that parses
// to an equivalent statement.
func (st *Statement) String() string {
	var b strings.Builder
	b.WriteString("REPORT LOCALIZED ASSOCIATION RULES\nFROM ")
	b.WriteString(quoteName(st.Dataset))
	if len(st.Range) > 0 {
		b.WriteString("\nWHERE RANGE ")
		for i, rc := range st.Range {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = (%s)", quoteName(rc.Attr), quoteNames(rc.Values))
		}
	}
	if len(st.ItemAttrs) > 0 {
		b.WriteString("\nAND ITEM ATTRIBUTES ")
		b.WriteString(quoteNames(st.ItemAttrs))
	}
	fmt.Fprintf(&b, "\nHAVING minsupport = %g AND minconfidence = %g", st.MinSupport, st.MinConfidence)
	if st.Plan != "" {
		fmt.Fprintf(&b, "\nUSING PLAN %s", quoteName(st.Plan))
	}
	b.WriteString(";")
	return b.String()
}
