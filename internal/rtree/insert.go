package rtree

import (
	"fmt"

	"colarm/internal/itemset"
)

// Insert adds an entry to a dynamic tree (Guttman's algorithm with the
// tree's configured split). Packed trees accept inserts too; they simply
// lose their perfect utilization.
func (t *Tree) Insert(e Entry) error {
	if e.Box.Dims() != t.dims {
		return fmt.Errorf("rtree: entry has %d dims, tree has %d", e.Box.Dims(), t.dims)
	}
	if e.Box.IsEmpty() {
		return fmt.Errorf("rtree: refusing to insert empty box")
	}
	if t.flat {
		t.insertFlat(e)
		return nil
	}
	l := t.chooseLeaf(t.root, e, nil)
	leaf := l.path[len(l.path)-1]
	leaf.entries = append(leaf.entries, e)
	t.size++
	t.adjustUp(l.path, e.Box, e.Support)
	if len(leaf.entries) > t.fanout {
		t.splitUp(l.path)
	}
	return nil
}

type leafPath struct {
	path []*node
}

// chooseLeaf descends from n picking, at each level, the child whose box
// needs the least enlargement to include e (ties by smaller area, then
// first).
func (t *Tree) chooseLeaf(n *node, e Entry, path []*node) *leafPath {
	path = append(path, n)
	if n.leaf {
		return &leafPath{path: path}
	}
	best := -1
	var bestEnl, bestArea float64
	for i, c := range n.children {
		enl := enlargement(c.box, e.Box)
		area := boxArea(c.box)
		if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return t.chooseLeaf(n.children[best], e, path)
}

// adjustUp grows boxes and max-support aggregates along the insert path.
func (t *Tree) adjustUp(path []*node, b itemset.Box, support int32) {
	for _, n := range path {
		if n.box.IsEmpty() {
			n.box = b.Clone()
		} else {
			n.box.ExtendBox(b)
		}
		if support > n.maxSupport {
			n.maxSupport = support
		}
	}
}

// splitUp splits the overfull node at the end of path and propagates
// splits (and possibly a new root) upward.
func (t *Tree) splitUp(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		over := (n.leaf && len(n.entries) > t.fanout) || (!n.leaf && len(n.children) > t.fanout)
		if !over {
			refresh(n)
			continue
		}
		a, b := t.splitNode(n)
		if i == 0 {
			// Grow a new root.
			t.root = &node{children: []*node{a, b}, box: itemset.NewBox(t.dims)}
			refresh(t.root)
			return
		}
		parent := path[i-1]
		// Replace n with a, add b.
		for j, c := range parent.children {
			if c == n {
				parent.children[j] = a
				break
			}
		}
		parent.children = append(parent.children, b)
	}
}

// refresh recomputes a node's box and max-support from its members.
func refresh(n *node) {
	n.box = itemset.NewBox(dimsOf(n))
	n.maxSupport = 0
	if n.leaf {
		for _, e := range n.entries {
			n.box.ExtendBox(e.Box)
			if e.Support > n.maxSupport {
				n.maxSupport = e.Support
			}
		}
		return
	}
	for _, c := range n.children {
		n.box.ExtendBox(c.box)
		if c.maxSupport > n.maxSupport {
			n.maxSupport = c.maxSupport
		}
	}
}

func dimsOf(n *node) int {
	if n.box.Dims() > 0 {
		return n.box.Dims()
	}
	if n.leaf && len(n.entries) > 0 {
		return n.entries[0].Box.Dims()
	}
	if !n.leaf && len(n.children) > 0 {
		return dimsOf(n.children[0])
	}
	return 0
}

// member abstracts leaf entries and interior children so one split
// implementation serves both layouts: child carries a pointer-layout
// node, childIdx a flat-layout slab index.
type member struct {
	box      itemset.Box
	entry    Entry
	child    *node
	childIdx int32
	isChild  bool
}

func (t *Tree) members(n *node) []member {
	if n.leaf {
		ms := make([]member, len(n.entries))
		for i, e := range n.entries {
			ms[i] = member{box: e.Box, entry: e}
		}
		return ms
	}
	ms := make([]member, len(n.children))
	for i, c := range n.children {
		ms[i] = member{box: c.box, child: c, isChild: true}
	}
	return ms
}

// splitNode divides an overfull node into two using the configured
// algorithm and returns the two halves (the first reuses n's identity
// semantics but is a fresh node).
func (t *Tree) splitNode(n *node) (*node, *node) {
	ga, gb := t.partitionMembers(t.members(n))
	return ga.toNode(n.leaf), gb.toNode(n.leaf)
}

// partitionMembers runs Guttman's seed selection and distribution over
// the members of an overfull node; shared by both layouts.
func (t *Tree) partitionMembers(ms []member) (*group, *group) {
	var seedA, seedB int
	if t.split == LinearSplit {
		seedA, seedB = linearSeeds(ms, t.dims)
	} else {
		seedA, seedB = quadraticSeeds(ms)
	}
	ga := &group{box: ms[seedA].box.Clone()}
	gb := &group{box: ms[seedB].box.Clone()}
	ga.members = append(ga.members, ms[seedA])
	gb.members = append(gb.members, ms[seedB])

	rest := make([]member, 0, len(ms)-2)
	for i, m := range ms {
		if i != seedA && i != seedB {
			rest = append(rest, m)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining
		// members to reach minimum fill.
		if len(ga.members)+len(rest) <= t.minFil {
			for _, m := range rest {
				ga.add(m)
			}
			break
		}
		if len(gb.members)+len(rest) <= t.minFil {
			for _, m := range rest {
				gb.add(m)
			}
			break
		}
		// PickNext: the member with the greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i, m := range rest {
			da := enlargement(ga.box, m.box)
			db := enlargement(gb.box, m.box)
			diff := da - db
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		m := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		da := enlargement(ga.box, m.box)
		db := enlargement(gb.box, m.box)
		switch {
		case da < db:
			ga.add(m)
		case db < da:
			gb.add(m)
		case len(ga.members) <= len(gb.members):
			ga.add(m)
		default:
			gb.add(m)
		}
	}
	return ga, gb
}

type group struct {
	box     itemset.Box
	members []member
}

func (g *group) add(m member) {
	g.box.ExtendBox(m.box)
	g.members = append(g.members, m)
}

func (g *group) toNode(leaf bool) *node {
	n := &node{leaf: leaf, box: g.box}
	for _, m := range g.members {
		if m.isChild {
			n.children = append(n.children, m.child)
			if m.child.maxSupport > n.maxSupport {
				n.maxSupport = m.child.maxSupport
			}
		} else {
			n.entries = append(n.entries, m.entry)
			if m.entry.Support > n.maxSupport {
				n.maxSupport = m.entry.Support
			}
		}
	}
	return n
}

// quadraticSeeds picks the pair wasting the most area if grouped
// together (Guttman's PickSeeds).
func quadraticSeeds(ms []member) (int, int) {
	sa, sb, worst := 0, 1, -1.0
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			u := ms[i].box.Clone()
			u.ExtendBox(ms[j].box)
			waste := boxArea(u) - boxArea(ms[i].box) - boxArea(ms[j].box)
			if waste > worst {
				sa, sb, worst = i, j, waste
			}
		}
	}
	return sa, sb
}

// linearSeeds picks, across dimensions, the pair with the greatest
// normalized separation (Guttman's LinearPickSeeds).
func linearSeeds(ms []member, dims int) (int, int) {
	bestA, bestB, bestSep := 0, 1, -1.0
	for d := 0; d < dims; d++ {
		loMaxIdx, hiMinIdx := 0, 0
		lo, hi := ms[0].box.Lo[d], ms[0].box.Hi[d]
		for i, m := range ms {
			if m.box.Lo[d] > ms[loMaxIdx].box.Lo[d] {
				loMaxIdx = i
			}
			if m.box.Hi[d] < ms[hiMinIdx].box.Hi[d] {
				hiMinIdx = i
			}
			if m.box.Lo[d] < lo {
				lo = m.box.Lo[d]
			}
			if m.box.Hi[d] > hi {
				hi = m.box.Hi[d]
			}
		}
		if loMaxIdx == hiMinIdx {
			continue
		}
		width := float64(hi - lo)
		if width <= 0 {
			width = 1
		}
		sep := float64(ms[loMaxIdx].box.Lo[d]-ms[hiMinIdx].box.Hi[d]) / width
		if sep > bestSep {
			bestA, bestB, bestSep = hiMinIdx, loMaxIdx, sep
		}
	}
	if bestA == bestB {
		bestB = (bestA + 1) % len(ms)
	}
	return bestA, bestB
}

// boxArea is the volume of a box; computed in log space would be safer
// for extreme dimensionality, but float64 covers the value-index domains
// COLARM indexes (cardinalities < 2^10, dims < 100).
func boxArea(b itemset.Box) float64 {
	if b.IsEmpty() {
		return 0
	}
	a := 1.0
	for d := range b.Lo {
		a *= float64(b.Hi[d] - b.Lo[d] + 1)
	}
	return a
}

// enlargement is how much b's area grows to include o.
func enlargement(b, o itemset.Box) float64 {
	if b.IsEmpty() {
		return boxArea(o)
	}
	u := b.Clone()
	u.ExtendBox(o)
	return boxArea(u) - boxArea(b)
}
