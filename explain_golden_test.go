package colarm

import (
	"math"
	"testing"

	"colarm/internal/datagen"
)

// The cost model with calibration off uses fixed default unit costs and
// deterministic fixed-stride statistics probes, so Explain's output is
// a pure function of (dataset, primary support, query). These golden
// tests freeze that function on two datasets; a diff here means the
// optimizer's scoring changed, which must be a deliberate decision.

type goldenEstimate struct {
	plan       Plan
	cost       float64
	candidates float64
	qualified  float64
}

func checkEstimates(t *testing.T, label string, got []PlanEstimate, want []goldenEstimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d estimates, want %d", label, len(got), len(want))
	}
	near := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-6*math.Max(1, math.Abs(b))
	}
	for i, w := range want {
		g := got[i]
		if g.Plan != w.plan {
			t.Fatalf("%s[%d]: plan %s, want %s (estimates must follow plan declaration order)", label, i, g.Plan, w.plan)
		}
		if !near(g.Cost, w.cost) || !near(g.Candidates, w.candidates) || !near(g.Qualified, w.qualified) {
			t.Errorf("%s[%d] %s: got cost=%.6f cand=%.6f qual=%.6f, want cost=%.6f cand=%.6f qual=%.6f",
				label, i, g.Plan, g.Cost, g.Candidates, g.Qualified, w.cost, w.candidates, w.qualified)
		}
	}

	// Structural invariants of the paper's cost model, independent of
	// the frozen numbers: selection push-up only removes work (S-E-V ≥
	// S-VS, SS-E-V ≥ SS-VS), the supported search can only shrink the
	// candidate stream, and the qualified-itemset estimate is a
	// property of the query, identical across the five MIP plans.
	byPlan := map[Plan]PlanEstimate{}
	for _, g := range got {
		byPlan[g.Plan] = g
	}
	if byPlan[SEV].Cost < byPlan[SVS].Cost {
		t.Errorf("%s: cost(S-E-V)=%.3f < cost(S-VS)=%.3f", label, byPlan[SEV].Cost, byPlan[SVS].Cost)
	}
	if byPlan[SSEV].Cost < byPlan[SSVS].Cost {
		t.Errorf("%s: cost(SS-E-V)=%.3f < cost(SS-VS)=%.3f", label, byPlan[SSEV].Cost, byPlan[SSVS].Cost)
	}
	if byPlan[SSEV].Candidates > byPlan[SEV].Candidates {
		t.Errorf("%s: supported search grew the candidate estimate: %.3f > %.3f",
			label, byPlan[SSEV].Candidates, byPlan[SEV].Candidates)
	}
	for _, p := range []Plan{SVS, SSEV, SSVS, SSEUV} {
		if byPlan[p].Qualified != byPlan[SEV].Qualified {
			t.Errorf("%s: qualified estimate differs across MIP plans: %s=%.6f, S-E-V=%.6f",
				label, p, byPlan[p].Qualified, byPlan[SEV].Qualified)
		}
	}
	if byPlan[ARM].Candidates != 0 {
		t.Errorf("%s: ARM consults no prestored candidates, estimate %.3f", label, byPlan[ARM].Candidates)
	}
	for _, g := range got {
		if g.Cost <= 0 || math.IsNaN(g.Cost) || math.IsInf(g.Cost, 0) {
			t.Errorf("%s: plan %s has degenerate cost %v", label, g.Plan, g.Cost)
		}
	}
}

func TestExplainGoldenSalary(t *testing.T) {
	ds, err := Salary()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(ds, Options{PrimarySupport: 0.18})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Range:          map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttributes: []string{"Age", "Salary"},
		MinSupport:     0.70,
		MinConfidence:  0.95,
	}
	ests, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	checkEstimates(t, "salary", ests, []goldenEstimate{
		{SEV, 1160.380231, 13, 0.830848},
		{SVS, 1056.380231, 13, 0.830848},
		{SSEV, 894.580231, 10, 0.830848},
		{SSVS, 814.580231, 10, 0.830848},
		{SSEUV, 893.380231, 10, 0.830848},
		{ARM, 247.383523, 0, 1.250000},
	})

	// The optimizer must execute the argmin of exactly these estimates.
	res, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan != ARM {
		t.Errorf("salary: optimizer chose %s, cheapest estimate is ARM", res.Stats.Plan)
	}
}

func TestExplainGoldenChessQuarter(t *testing.T) {
	d, err := datagen.Generate(datagen.Scaled(datagen.ChessConfig(1), 0.25))
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{rel: d}
	eng, err := Open(ds, Options{PrimarySupport: 0.70})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.NumPartitions(); got != 8507 {
		t.Fatalf("quarter-scale chess index holds %d partitions, want 8507 (generator or miner drifted)", got)
	}
	attrs := ds.Attributes()
	vals, err := ds.Values(attrs[0])
	if err != nil {
		t.Fatal(err)
	}
	ests, err := eng.Explain(Query{
		Range:         map[string][]string{attrs[0]: vals[:1]},
		MinSupport:    0.85,
		MinConfidence: 0.90,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkEstimates(t, "chess", ests, []goldenEstimate{
		{SEV, 991693.451473, 8507, 263.782946},
		{SVS, 923637.451473, 8507, 263.782946},
		{SSEV, 211609.297984, 395.674419, 263.782946},
		{SSVS, 208443.902636, 395.674419, 263.782946},
		{SSEUV, 210066.167752, 395.674419, 263.782946},
		{ARM, 88878.989551, 0, 2.071963},
	})
}
