package itemset

import (
	"colarm/internal/bitset"
	"colarm/internal/relation"
)

// ItemTidsets computes, for every item of the space, the tidset of records
// containing it. Index the result by Item. These per-item bitmaps are the
// shared substrate of the CHARM miner, the online ELIMINATE/VERIFY record
// checks, and the D^Q membership bitmap.
func ItemTidsets(d *relation.Dataset, sp *Space) []*bitset.Set {
	m := d.NumRecords()
	out := make([]*bitset.Set, sp.NumItems())
	for i := range out {
		out[i] = bitset.New(m)
	}
	n := d.NumAttrs()
	for r := 0; r < m; r++ {
		for a := 0; a < n; a++ {
			out[sp.ItemOf(a, d.Value(r, a))].Add(r)
		}
	}
	// Records arrive in storage order, so values correlated with arrival
	// cluster into runs; re-pack each tidset into its cheapest encoding.
	for _, t := range out {
		t.Optimize()
	}
	return out
}

// RegionTidset computes the bitmap of records inside the region:
// AND over restricted dimensions of (OR over selected values of the
// per-item tidsets). An unrestricted region yields the full record set.
func RegionTidset(reg *Region, sp *Space, tidsets []*bitset.Set, numRecords int) *bitset.Set {
	acc := bitset.New(numRecords)
	acc.Fill()
	for d := 0; d < reg.Dims(); d++ {
		if !reg.Restricted(d) {
			continue
		}
		dim := bitset.New(numRecords)
		for _, v := range reg.Selected(d) {
			dim.Or(tidsets[sp.ItemOf(d, v)])
		}
		acc.And(dim)
	}
	return acc
}
