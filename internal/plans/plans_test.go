package plans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"colarm/internal/itemset"
	"colarm/internal/mip"
	"colarm/internal/relation"
	"colarm/internal/rtree"
	"colarm/internal/rules"
)

func salaryIndex(t testing.TB, primary float64) *mip.Index {
	t.Helper()
	b := relation.NewBuilder("salary", "Company", "Title", "Location", "Gender", "Age", "Salary")
	rows := [][]string{
		{"IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"},
		{"IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"},
		{"Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"},
		{"Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"},
		{"Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"},
		{"Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"},
	}
	for _, r := range rows {
		if err := b.AddRecord(r...); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := mip.Build(b.Build(), mip.Options{PrimarySupport: primary, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus plan must error")
	}
}

func TestQueryValidation(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx)
	reg := itemset.RegionFor(idx.Space)
	cases := []*Query{
		{Region: nil, MinSupport: 0.5, MinConfidence: 0.5},
		{Region: itemset.NewRegion([]int{2}), MinSupport: 0.5, MinConfidence: 0.5},
		{Region: reg, MinSupport: 0, MinConfidence: 0.5},
		{Region: reg, MinSupport: 1.5, MinConfidence: 0.5},
		{Region: reg, MinSupport: 0.5, MinConfidence: -0.1},
		{Region: reg, MinSupport: 0.5, MinConfidence: 1.1},
		{Region: reg, MinSupport: 0.5, MinConfidence: 0.5, ItemAttrs: []bool{true}},
	}
	for i, q := range cases {
		if _, err := ex.Run(SEV, q); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

// TestPaperLocalizedRule reproduces the paper's motivating example: for
// female employees in Seattle, the rule Age=30-40 ⇒ Salary=90K-120K
// holds with 75%% support and 100%% confidence, while the global rule
// Age=20-30 ⇒ Salary=90K-120K does not hold in the subset.
func TestPaperLocalizedRule(t *testing.T) {
	idx := salaryIndex(t, 0.18) // primary count 2: local patterns stored
	ex := NewExecutor(idx)
	reg, err := idx.RegionFromSelections(map[string][]string{
		"Location": {"Seattle"}, "Gender": {"F"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ageIdx := idx.Dataset.AttrIndex("Age")
	salIdx := idx.Dataset.AttrIndex("Salary")
	mask := make([]bool, idx.Space.NumAttrs())
	mask[ageIdx], mask[salIdx] = true, true

	q := &Query{Region: reg, ItemAttrs: mask, MinSupport: 0.70, MinConfidence: 0.95}
	res, err := ex.Run(SSEUV, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubsetSize != 4 {
		t.Fatalf("|DQ| = %d, want 4", res.Stats.SubsetSize)
	}
	a1, _ := idx.Space.ParseItem("Age=30-40")
	s2, _ := idx.Space.ParseItem("Salary=90K-120K")
	found := false
	for _, r := range res.Rules {
		if r.Antecedent.Equal(itemset.NewSet(a1)) && r.Consequent.Equal(itemset.NewSet(s2)) {
			found = true
			if math.Abs(r.Support-0.75) > 1e-9 {
				t.Errorf("R_L support = %v, want 0.75", r.Support)
			}
			if math.Abs(r.Confidence-1.0) > 1e-9 {
				t.Errorf("R_L confidence = %v, want 1.0", r.Confidence)
			}
		}
	}
	if !found {
		for _, r := range res.Rules {
			t.Logf("rule: %s", r.Format(idx.Space))
		}
		t.Fatal("localized rule (Age=30-40 => Salary=90K-120K) not found")
	}
	// The global rule A0→S2 must NOT hold here (support 0 in subset).
	a0, _ := idx.Space.ParseItem("Age=20-30")
	for _, r := range res.Rules {
		if r.Antecedent.Contains(a0) {
			t.Errorf("global-rule antecedent leaked into local result: %s", r.Format(idx.Space))
		}
	}
}

func TestEmptySubsetYieldsNoRules(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx)
	// Gender=M AND Title=QA Mgr never co-occur.
	reg, err := idx.RegionFromSelections(map[string][]string{
		"Gender": {"M"}, "Title": {"QA Mgr"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		res, err := ex.Run(k, &Query{Region: reg, MinSupport: 0.5, MinConfidence: 0.5})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(res.Rules) != 0 || res.Stats.SubsetSize != 0 {
			t.Errorf("%v: empty subset produced %d rules", k, len(res.Rules))
		}
	}
}

func TestFullDomainQueryEqualsGlobalMining(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx)
	reg := itemset.RegionFor(idx.Space)
	q := &Query{Region: reg, MinSupport: 0.45, MinConfidence: 0.8}
	res, err := ex.Run(SSEUV, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubsetSize != 11 {
		t.Fatalf("|DQ| = %d", res.Stats.SubsetSize)
	}
	// The paper's global rule R_G = (Age=20-30 ⇒ Salary=90K-120K) with
	// support 45% and confidence 83%.
	a0, _ := idx.Space.ParseItem("Age=20-30")
	s2, _ := idx.Space.ParseItem("Salary=90K-120K")
	found := false
	for _, r := range res.Rules {
		if r.Antecedent.Equal(itemset.NewSet(a0)) && r.Consequent.Equal(itemset.NewSet(s2)) {
			found = true
			if r.SupportCount != 5 || r.AntecedentCount != 6 {
				t.Errorf("R_G counts = %d/%d, want 5/6", r.SupportCount, r.AntecedentCount)
			}
		}
	}
	if !found {
		t.Error("global rule R_G not found on full-domain query")
	}
	// All candidates must be classified Contained on a full-domain query
	// and no record-level support checks should be needed for SS-E-U-V.
	if res.Stats.PartialOverlap != 0 {
		t.Errorf("full-domain query saw %d partial MIPs", res.Stats.PartialOverlap)
	}
}

func TestContainedShortcutSkipsChecks(t *testing.T) {
	idx := salaryIndex(t, 0.18)
	ex := NewExecutor(idx)
	reg := itemset.RegionFor(idx.Space)
	q := &Query{Region: reg, MinSupport: 0.45, MinConfidence: 0.8}

	resSEV, err := ex.Run(SEV, q)
	if err != nil {
		t.Fatal(err)
	}
	resSSEUV, err := ex.Run(SSEUV, q)
	if err != nil {
		t.Fatal(err)
	}
	if resSSEUV.Stats.SupportChecks >= resSEV.Stats.SupportChecks {
		t.Errorf("SS-E-U-V did %d support checks, S-E-V %d — shortcut ineffective",
			resSSEUV.Stats.SupportChecks, resSEV.Stats.SupportChecks)
	}
}

func TestSupportedSearchPrunes(t *testing.T) {
	idx := salaryIndex(t, 0.1)
	ex := NewExecutor(idx)
	reg, err := idx.RegionFromSelections(map[string][]string{"Location": {"Seattle"}})
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Region: reg, MinSupport: 0.9, MinConfidence: 0.9}
	resS, err := ex.Run(SEV, q)
	if err != nil {
		t.Fatal(err)
	}
	resSS, err := ex.Run(SSEV, q)
	if err != nil {
		t.Fatal(err)
	}
	if resSS.Stats.Candidates > resS.Stats.Candidates {
		t.Errorf("SS emitted more candidates (%d) than S (%d)", resSS.Stats.Candidates, resS.Stats.Candidates)
	}
	// Identical answers regardless.
	assertSameRules(t, resS.Rules, resSS.Rules, "SEV vs SSEV")
}

func assertSameRules(t *testing.T, a, b []rules.Rule, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rules", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("%s: rule %d key %s vs %s", label, i, a[i].Key(), b[i].Key())
		}
		if a[i].SupportCount != b[i].SupportCount ||
			a[i].AntecedentCount != b[i].AntecedentCount ||
			math.Abs(a[i].Confidence-b[i].Confidence) > 1e-12 {
			t.Fatalf("%s: rule %d measures differ: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// randomIndex builds a random dataset and MIP-index for property tests.
func randomIndex(r *rand.Rand) (*mip.Index, error) {
	nAttrs := 2 + r.Intn(3)
	names := make([]string, nAttrs)
	cards := make([]int, nAttrs)
	for i := range names {
		names[i] = string(rune('A' + i))
		cards[i] = 2 + r.Intn(4)
	}
	b := relation.NewBuilder("rand", names...)
	for a := 0; a < nAttrs; a++ {
		for v := 0; v < cards[a]; v++ {
			b.AddValue(a, string(rune('a'+a))+string(rune('0'+v)))
		}
	}
	m := 10 + r.Intn(40)
	for i := 0; i < m; i++ {
		row := make([]int, nAttrs)
		for a := range row {
			// Skewed values so correlations (and CFIs) arise.
			if r.Intn(3) > 0 {
				row[a] = r.Intn(2)
			} else {
				row[a] = r.Intn(cards[a])
			}
		}
		if err := b.AddRecordIdx(row...); err != nil {
			return nil, err
		}
	}
	packing := rtree.STRPacking
	if r.Intn(2) == 0 {
		packing = rtree.MortonPacking
	}
	return mip.Build(b.Build(), mip.Options{
		PrimarySupport: 0.05 + r.Float64()*0.2,
		Fanout:         3 + r.Intn(6),
		Packing:        packing,
	})
}

func randomQuery(r *rand.Rand, idx *mip.Index) *Query {
	reg := itemset.RegionFor(idx.Space)
	n := idx.Space.NumAttrs()
	for a := 0; a < n; a++ {
		if r.Intn(2) == 0 {
			continue
		}
		card := idx.Space.Cardinality(a)
		var vals []int
		for v := 0; v < card; v++ {
			if r.Intn(2) == 0 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			vals = []int{r.Intn(card)}
		}
		if err := reg.Restrict(a, vals); err != nil {
			panic(err)
		}
	}
	var mask []bool
	if r.Intn(2) == 0 {
		mask = make([]bool, n)
		cnt := 0
		for a := range mask {
			if r.Intn(3) > 0 {
				mask[a] = true
				cnt++
			}
		}
		if cnt < 2 {
			mask[0], mask[1] = true, true
		}
	}
	return &Query{
		Region:        reg,
		ItemAttrs:     mask,
		MinSupport:    0.2 + r.Float64()*0.7,
		MinConfidence: 0.3 + r.Float64()*0.6,
	}
}

// mipKinds are the five index-based plans, which must agree exactly.
func mipKinds() []Kind { return []Kind{SEV, SVS, SSEV, SSVS, SSEUV} }

// TestQuickPlanEquivalence is the central correctness invariant of the
// paper: the five MIP-index plans answer every localized mining query
// identically, and the from-scratch ARM baseline covers that answer —
// every index rule reappears in ARM's output with the same antecedent,
// support count and confidence (its consequent may extend to the local
// closure).
func TestQuickPlanEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx, err := randomIndex(r)
		if err != nil {
			return false
		}
		ex := NewExecutor(idx)
		// Exercise all three check modes across seeds.
		ex.Mode = CheckMode(r.Intn(3))
		for trial := 0; trial < 3; trial++ {
			q := randomQuery(r, idx)
			var ref *Result
			for _, k := range mipKinds() {
				res, err := ex.Run(k, q)
				if err != nil {
					t.Logf("seed %d plan %v: %v", seed, k, err)
					return false
				}
				if ref == nil {
					ref = res
					continue
				}
				if len(res.Rules) != len(ref.Rules) {
					t.Logf("seed %d trial %d: %v emitted %d rules, %v emitted %d",
						seed, trial, k, len(res.Rules), ref.Stats.Plan, len(ref.Rules))
					return false
				}
				for i := range res.Rules {
					if res.Rules[i].Key() != ref.Rules[i].Key() ||
						res.Rules[i].SupportCount != ref.Rules[i].SupportCount ||
						math.Abs(res.Rules[i].Confidence-ref.Rules[i].Confidence) > 1e-12 {
						t.Logf("seed %d trial %d plan %v rule %d differs", seed, trial, k, i)
						return false
					}
				}
			}
			// ARM cover: index each ARM rule by antecedent.
			arm, err := ex.Run(ARM, q)
			if err != nil {
				t.Logf("seed %d ARM: %v", seed, err)
				return false
			}
			type sig struct {
				supp int
				conf float64
			}
			armByAnte := map[string][]sig{}
			for _, ar := range arm.Rules {
				armByAnte[ar.Antecedent.Key()] = append(armByAnte[ar.Antecedent.Key()],
					sig{ar.SupportCount, ar.Confidence})
			}
			for _, mr := range ref.Rules {
				covered := false
				for _, s := range armByAnte[mr.Antecedent.Key()] {
					if s.supp == mr.SupportCount && math.Abs(s.conf-mr.Confidence) < 1e-9 {
						covered = true
						break
					}
				}
				if !covered {
					t.Logf("seed %d trial %d: MIP rule %s=>%s (supp %d conf %.3f) not covered by ARM",
						seed, trial, mr.Antecedent.Key(), mr.Consequent.Key(), mr.SupportCount, mr.Confidence)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickARMRulesValid verifies every ARM rule against brute-force
// recounts (ARM may legitimately exceed the index plans' answer, but
// each of its rules must satisfy the thresholds exactly).
func TestQuickARMRulesValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx, err := randomIndex(r)
		if err != nil {
			return false
		}
		ex := NewExecutor(idx)
		q := randomQuery(r, idx)
		res, err := ex.Run(ARM, q)
		if err != nil {
			return false
		}
		d := idx.Dataset
		count := func(s itemset.Set) int {
			n := 0
			for rec := 0; rec < d.NumRecords(); rec++ {
				if !q.Region.ContainsPoint(d.Record(rec)) {
					continue
				}
				all := true
				for _, it := range s {
					if d.Value(rec, idx.Space.AttrOf(it)) != idx.Space.ValueOf(it) {
						all = false
						break
					}
				}
				if all {
					n++
				}
			}
			return n
		}
		mask := q.itemMask(idx.Space.NumAttrs())
		for _, rule := range res.Rules {
			body := rule.Antecedent.Union(rule.Consequent)
			if count(body) != rule.SupportCount || count(rule.Antecedent) != rule.AntecedentCount {
				return false
			}
			if rule.SupportCount < res.Stats.MinCount {
				return false
			}
			if rule.Confidence < q.MinConfidence-1e-12 {
				return false
			}
			for _, it := range body {
				if !mask[idx.Space.AttrOf(it)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRulesSatisfyThresholds checks every emitted rule against a
// brute-force recount of its supports within the focal subset.
func TestQuickRulesSatisfyThresholds(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx, err := randomIndex(r)
		if err != nil {
			return false
		}
		ex := NewExecutor(idx)
		q := randomQuery(r, idx)
		res, err := ex.Run(SSEUV, q)
		if err != nil {
			return false
		}
		d := idx.Dataset
		count := func(s itemset.Set, inSubset bool) int {
			n := 0
			for rec := 0; rec < d.NumRecords(); rec++ {
				if inSubset && !q.Region.ContainsPoint(d.Record(rec)) {
					continue
				}
				all := true
				for _, it := range s {
					a := idx.Space.AttrOf(it)
					if d.Value(rec, a) != idx.Space.ValueOf(it) {
						all = false
						break
					}
				}
				if all {
					n++
				}
			}
			return n
		}
		minCount := res.Stats.MinCount
		for _, rule := range res.Rules {
			body := rule.Antecedent.Union(rule.Consequent)
			sc := count(body, true)
			ac := count(rule.Antecedent, true)
			if sc != rule.SupportCount || ac != rule.AntecedentCount {
				return false
			}
			if sc < minCount {
				return false
			}
			if float64(sc)/float64(ac) < q.MinConfidence-1e-12 {
				return false
			}
			// Item-attribute compliance.
			mask := q.itemMask(idx.Space.NumAttrs())
			for _, it := range body {
				if !mask[idx.Space.AttrOf(it)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
