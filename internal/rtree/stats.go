package rtree

import "sort"

// LevelStats summarizes one level of the tree for the cost model
// (paper Table 3): the node count N_j and the average normalized extent
// of node boxes per dimension, DP_{j,i}avg. Level 0 is the root.
type LevelStats struct {
	Nodes     int
	AvgExtent []float64 // per dimension, fraction of the domain
	// Supports holds the sorted max-support values of the level's nodes,
	// enabling the SS-selectivity estimate "fraction of nodes whose
	// subtree can beat a support threshold".
	Supports []int32
}

// EntryStats summarizes the leaf entries: their count, average normalized
// extents, and sorted global supports (for the supported-filter
// selectivity and Lemma 4.2 estimates).
type EntryStats struct {
	Count     int
	AvgExtent []float64
	Supports  []int32
}

// Stats computes per-level and entry statistics. cards gives the domain
// cardinality of each dimension used for extent normalization.
func (t *Tree) Stats(cards []int) ([]LevelStats, EntryStats) {
	h := t.Height()
	levels := make([]LevelStats, h)
	for i := range levels {
		levels[i].AvgExtent = make([]float64, t.dims)
	}
	es := EntryStats{AvgExtent: make([]float64, t.dims)}

	if t.flat {
		var walk func(ni int32, depth int)
		walk = func(ni int32, depth int) {
			nd := &t.fnodes[ni]
			ls := &levels[depth]
			ls.Nodes++
			ls.Supports = append(ls.Supports, nd.maxSupport)
			box := t.nodeBox(ni)
			if !box.IsEmpty() {
				for d := 0; d < t.dims; d++ {
					ls.AvgExtent[d] += norm(box.Extent(d), cards[d])
				}
			}
			if nd.leaf {
				for s := nd.off; s < nd.off+nd.count; s++ {
					es.Count++
					es.Supports = append(es.Supports, t.entSups[s])
					eb := t.entryBox(s)
					for d := 0; d < t.dims; d++ {
						es.AvgExtent[d] += norm(eb.Extent(d), cards[d])
					}
				}
				return
			}
			for _, c := range t.kids(ni) {
				walk(c, depth+1)
			}
		}
		walk(t.froot, 0)
	} else {
		var walk func(n *node, depth int)
		walk = func(n *node, depth int) {
			ls := &levels[depth]
			ls.Nodes++
			ls.Supports = append(ls.Supports, n.maxSupport)
			if !n.box.IsEmpty() {
				for d := 0; d < t.dims; d++ {
					ls.AvgExtent[d] += norm(n.box.Extent(d), cards[d])
				}
			}
			if n.leaf {
				for _, e := range n.entries {
					es.Count++
					es.Supports = append(es.Supports, e.Support)
					for d := 0; d < t.dims; d++ {
						es.AvgExtent[d] += norm(e.Box.Extent(d), cards[d])
					}
				}
				return
			}
			for _, c := range n.children {
				walk(c, depth+1)
			}
		}
		walk(t.root, 0)
	}

	for i := range levels {
		if levels[i].Nodes > 0 {
			for d := range levels[i].AvgExtent {
				levels[i].AvgExtent[d] /= float64(levels[i].Nodes)
			}
		}
		sort.Slice(levels[i].Supports, func(a, b int) bool { return levels[i].Supports[a] < levels[i].Supports[b] })
	}
	if es.Count > 0 {
		for d := range es.AvgExtent {
			es.AvgExtent[d] /= float64(es.Count)
		}
	}
	sort.Slice(es.Supports, func(a, b int) bool { return es.Supports[a] < es.Supports[b] })
	return levels, es
}

func norm(extent, card int) float64 {
	if card <= 0 {
		return 0
	}
	return float64(extent) / float64(card)
}

// FractionAtLeast returns the fraction of the sorted supports that are
// >= minCount — the selectivity of a supported filter at that threshold.
func FractionAtLeast(sorted []int32, minCount int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= int32(minCount) })
	return float64(len(sorted)-i) / float64(len(sorted))
}
