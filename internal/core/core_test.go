package core

import (
	"testing"

	"colarm/internal/colarmql"
	"colarm/internal/datagen"
	"colarm/internal/plans"
)

func salaryEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	if opts.PrimarySupport == 0 {
		opts.PrimarySupport = 0.18
	}
	eng, err := NewEngine(datagen.Salary(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(datagen.Salary(), Options{PrimarySupport: 0}); err == nil {
		t.Error("zero primary support must error")
	}
	if _, err := NewEngine(datagen.Salary(), Options{PrimarySupport: 2}); err == nil {
		t.Error("primary support > 1 must error")
	}
}

func TestEngineModePlumbing(t *testing.T) {
	eng := salaryEngine(t, Options{CheckMode: plans.ScanCheck})
	if eng.Executor.Mode != plans.ScanCheck {
		t.Error("executor mode not plumbed")
	}
	if eng.Model.Mode != plans.ScanCheck {
		t.Error("model mode not plumbed")
	}
}

func TestBuildQueryAndMine(t *testing.T) {
	eng := salaryEngine(t, Options{CalibrateUnits: true})
	q, err := eng.BuildQuery(&QuerySpec{
		Range:         map[string][]string{"Location": {"Seattle"}, "Gender": {"F"}},
		ItemAttrs:     []string{"Age", "Salary"},
		MinSupport:    0.70,
		MinConfidence: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ests, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 6 {
		t.Errorf("estimates = %d", len(ests))
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules")
	}
	// The optimizer's choice matches the executed plan.
	kind, ests2, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan != kind {
		t.Errorf("mined with %v, explain chose %v", res.Stats.Plan, kind)
	}
	if len(ests2) != 6 {
		t.Errorf("explain estimates = %d", len(ests2))
	}
	// Forced plan agrees on the answer (index plans only).
	forced, err := eng.MineWith(plans.SSEUV, q)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Stats.Plan != plans.SSEUV {
		t.Error("forced plan ignored")
	}
}

func TestBuildQueryErrors(t *testing.T) {
	eng := salaryEngine(t, Options{})
	if _, err := eng.BuildQuery(&QuerySpec{Range: map[string][]string{"Nope": {"x"}}, MinSupport: 0.5, MinConfidence: 0.5}); err == nil {
		t.Error("unknown range attribute must error")
	}
	if _, err := eng.BuildQuery(&QuerySpec{ItemAttrs: []string{"Nope"}, MinSupport: 0.5, MinConfidence: 0.5}); err == nil {
		t.Error("unknown item attribute must error")
	}
	// Invalid thresholds surface at Mine/Explain.
	q, err := eng.BuildQuery(&QuerySpec{MinSupport: 0, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Mine(q); err == nil {
		t.Error("invalid minsupport must error at Mine")
	}
	if _, _, err := eng.Explain(q); err == nil {
		t.Error("invalid minsupport must error at Explain")
	}
}

// TestQueryLanguageIntegration drives the full stack: parse -> spec ->
// query -> optimize -> execute.
func TestQueryLanguageIntegration(t *testing.T) {
	eng := salaryEngine(t, Options{})
	st, err := colarmql.Parse(`REPORT LOCALIZED ASSOCIATION RULES FROM salary
		WHERE RANGE Location = (Seattle), Gender = (F)
		AND ITEM ATTRIBUTES Age, Salary
		HAVING minsupport = 70% AND minconfidence = 95%;`)
	if err != nil {
		t.Fatal(err)
	}
	spec := &QuerySpec{
		Range:         map[string][]string{},
		ItemAttrs:     st.ItemAttrs,
		MinSupport:    st.MinSupport,
		MinConfidence: st.MinConfidence,
	}
	for _, rc := range st.Range {
		spec.Range[rc.Attr] = rc.Values
	}
	q, err := eng.BuildQuery(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := eng.Mine(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubsetSize != 4 || len(res.Rules) == 0 {
		t.Fatalf("subset %d, rules %d", res.Stats.SubsetSize, len(res.Rules))
	}
}
