// Package rules implements association rule generation and
// interestingness measures. The VERIFY operators of COLARM's mining plans
// call Generate for each qualified candidate itemset, supplying a local
// support oracle bound to the query's focal subset; the generation
// algorithm is ap-genrules (Agrawal & Srikant) with level-wise consequent
// growth and minconf pruning.
//
// Beyond support and confidence, the paper stresses null-invariant
// measures (its citation [23], Wu, Chen & Han); Lift, Cosine, Kulczynski
// and MaxConf are computed for every emitted rule.
package rules

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"colarm/internal/itemset"
)

// Rule is one association rule X ⇒ Y discovered within a focal subset.
// Counts are absolute record counts within the subset; fractional
// measures are relative to the subset size.
type Rule struct {
	Antecedent itemset.Set // X
	Consequent itemset.Set // Y

	SupportCount    int // |D^Q_{X∪Y}|
	AntecedentCount int // |D^Q_X|
	ConsequentCount int // |D^Q_Y|
	SubsetSize      int // |D^Q|

	Support    float64 // SupportCount / SubsetSize
	Confidence float64 // SupportCount / AntecedentCount
}

// Lift is Confidence / P(Y); values > 1 indicate positive correlation.
func (r Rule) Lift() float64 {
	if r.ConsequentCount == 0 || r.SubsetSize == 0 {
		return 0
	}
	py := float64(r.ConsequentCount) / float64(r.SubsetSize)
	if py == 0 {
		return 0
	}
	return r.Confidence / py
}

// Cosine is the null-invariant cosine measure
// supp(XY)/sqrt(supp(X)·supp(Y)).
func (r Rule) Cosine() float64 {
	d := float64(r.AntecedentCount) * float64(r.ConsequentCount)
	if d == 0 {
		return 0
	}
	return float64(r.SupportCount) / math.Sqrt(d)
}

// Kulczynski is the null-invariant average of the two directional
// confidences.
func (r Rule) Kulczynski() float64 {
	if r.AntecedentCount == 0 || r.ConsequentCount == 0 {
		return 0
	}
	return 0.5 * (float64(r.SupportCount)/float64(r.AntecedentCount) +
		float64(r.SupportCount)/float64(r.ConsequentCount))
}

// MaxConf is the null-invariant maximum of the two directional
// confidences.
func (r Rule) MaxConf() float64 {
	if r.AntecedentCount == 0 || r.ConsequentCount == 0 {
		return 0
	}
	a := float64(r.SupportCount) / float64(r.AntecedentCount)
	b := float64(r.SupportCount) / float64(r.ConsequentCount)
	return math.Max(a, b)
}

// Format renders the rule with item labels and its headline measures.
func (r Rule) Format(sp *itemset.Space) string {
	var b strings.Builder
	b.WriteString(r.Antecedent.Format(sp))
	b.WriteString(" => ")
	b.WriteString(r.Consequent.Format(sp))
	fmt.Fprintf(&b, "  [supp=%.1f%% conf=%.1f%%]", 100*r.Support, 100*r.Confidence)
	return b.String()
}

// Key returns a stable identity for deduplication across plans.
func (r Rule) Key() string {
	return r.Antecedent.Key() + "=>" + r.Consequent.Key()
}

// SupportOracle reports the absolute support count of an itemset within
// the focal subset, or -1 when the itemset's support cannot be resolved
// (not covered by the prestored CFIs). Oracles are provided by the
// mining plans (closure lookup + tidset∩D^Q) or by the from-scratch ARM
// plan (mined supports).
type SupportOracle func(itemset.Set) int

// Options bounds rule generation.
type Options struct {
	// MaxConsequent caps |Y|; 0 means no cap. Long CFIs generate
	// exponentially many rules; plans default this to the CFI length.
	MaxConsequent int
}

// Generate emits the rules X ⇒ Y with X ∪ Y = items, X, Y nonempty and
// disjoint, whose confidence (relative to the focal subset) reaches
// minConf. suppCount is the local support of the full itemset;
// subsetSize is |D^Q|. Generation is level-wise over consequents: if a
// consequent Y fails minconf, every superset of Y is pruned, which is
// sound because growing Y shrinks X and confidence is anti-monotone in
// supp(X).
func Generate(items itemset.Set, suppCount, subsetSize int, minConf float64, oracle SupportOracle, opts Options) []Rule {
	if len(items) < 2 || suppCount <= 0 || subsetSize <= 0 {
		return nil
	}
	maxCons := opts.MaxConsequent
	if maxCons <= 0 || maxCons > len(items)-1 {
		maxCons = len(items) - 1 // X must stay nonempty
	}
	var out []Rule

	// Level 1 consequents.
	var frontier []itemset.Set
	for _, it := range items {
		y := itemset.Set{it}
		if r, ok := tryRule(items, y, suppCount, subsetSize, minConf, oracle); ok {
			out = append(out, r)
			frontier = append(frontier, y)
		}
	}
	// Grow consequents level-wise from surviving ones (apriori-style
	// join on shared prefix).
	for level := 2; level <= maxCons && len(frontier) > 1; level++ {
		var next []itemset.Set
		for i := 0; i < len(frontier); i++ {
			for j := i + 1; j < len(frontier); j++ {
				y := joinPrefix(frontier[i], frontier[j])
				if y == nil {
					break // sorted frontier: no later j shares the prefix
				}
				if r, ok := tryRule(items, y, suppCount, subsetSize, minConf, oracle); ok {
					out = append(out, r)
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	SortCanonical(out)
	return out
}

// tryRule evaluates (items\y) ⇒ y, returning it when confident.
func tryRule(items, y itemset.Set, suppCount, subsetSize int, minConf float64, oracle SupportOracle) (Rule, bool) {
	x := items.Minus(y)
	if len(x) == 0 {
		return Rule{}, false
	}
	xCount := oracle(x)
	if xCount <= 0 {
		return Rule{}, false
	}
	conf := float64(suppCount) / float64(xCount)
	if conf < minConf {
		return Rule{}, false
	}
	yCount := oracle(y)
	return Rule{
		Antecedent:      x,
		Consequent:      y,
		SupportCount:    suppCount,
		AntecedentCount: xCount,
		ConsequentCount: yCount,
		SubsetSize:      subsetSize,
		Support:         float64(suppCount) / float64(subsetSize),
		Confidence:      conf,
	}, true
}

// joinPrefix merges two k-sets sharing their first k-1 items into a
// (k+1)-set, or nil when they do not join.
func joinPrefix(a, b itemset.Set) itemset.Set {
	k := len(a)
	for i := 0; i < k-1; i++ {
		if a[i] != b[i] {
			return nil
		}
	}
	if a[k-1] >= b[k-1] {
		return nil
	}
	out := make(itemset.Set, k+1)
	copy(out, a)
	out[k] = b[k-1]
	return out
}

// Dedupe removes duplicate rules (same antecedent and consequent),
// keeping the first occurrence. Plans that merge rule lists from
// contained and partially overlapped MIPs use it to produce the final
// {R^Q}.
func Dedupe(rs []Rule) []Rule {
	seen := make(map[string]bool, len(rs))
	out := rs[:0]
	for _, r := range rs {
		k := r.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// SortCanonical orders rules by descending confidence, then support,
// then key — the presentation order of the CLI and the comparison order
// of plan-equivalence tests. Keys are materialized once up front: they
// sit on the hot path of queries emitting many rules.
func SortCanonical(rs []Rule) {
	keys := make([]string, len(rs))
	for i := range rs {
		keys[i] = rs[i].Key()
	}
	order := make([]int, len(rs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		if rs[i].SupportCount != rs[j].SupportCount {
			return rs[i].SupportCount > rs[j].SupportCount
		}
		return keys[i] < keys[j]
	})
	sorted := make([]Rule, len(rs))
	for a, i := range order {
		sorted[a] = rs[i]
	}
	copy(rs, sorted)
}
