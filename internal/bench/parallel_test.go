package bench

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"colarm/internal/core"
	"colarm/internal/datagen"
	"colarm/internal/plans"
)

// TestSerialParallelEquivalenceOnPresets runs every plan kind on every
// preset benchmark dataset (chess, mushroom, PUMSB — scaled down to
// keep the suite fast) at Workers=1 and Workers=GOMAXPROCS and asserts
// identical rule sets and operator counters. This is the dataset-scale
// complement of the salary-table equivalence test in internal/plans.
func TestSerialParallelEquivalenceOnPresets(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, spec := range Specs(false, 7) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// PUMSB is far denser than the other two; shrink it harder
			// so the full kind × frac × workers sweep stays fast.
			extra := 0.2
			if spec.Name == "pumsb" {
				extra = 0.05
			}
			spec.Config = datagen.Scaled(spec.Config, extra)
			d, err := datagen.Generate(spec.Config)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := core.NewEngine(d, core.Options{
				PrimarySupport: spec.Primary,
				CheckMode:      plans.ScanCheck,
			})
			if err != nil {
				t.Fatal(err)
			}
			env := &Env{Spec: spec, Dataset: d, Engine: eng}
			rng := rand.New(rand.NewSource(11))
			minSupp := spec.MinSupps[len(spec.MinSupps)-1]
			minConf := spec.MinConfs[len(spec.MinConfs)-1]
			for _, frac := range []float64{0.5, 0.1} {
				q := env.QueryFor(env.RandomFocalSubset(rng, frac), minSupp, minConf)
				for _, k := range plans.Kinds() {
					eng.Executor.Workers = 1
					want, err := eng.MineWith(k, q)
					if err != nil {
						t.Fatalf("%v frac=%.2f serial: %v", k, frac, err)
					}
					eng.Executor.Workers = workers
					got, err := eng.MineWith(k, q)
					if err != nil {
						t.Fatalf("%v frac=%.2f parallel: %v", k, frac, err)
					}
					if !reflect.DeepEqual(got.Rules, want.Rules) {
						t.Errorf("%v frac=%.2f: rules diverge (%d vs %d)",
							k, frac, len(got.Rules), len(want.Rules))
					}
					ws, gs := want.Stats, got.Stats
					ws.Duration, gs.Duration = 0, 0
					if ws != gs {
						t.Errorf("%v frac=%.2f: stats diverge\nserial:   %+v\nparallel: %+v",
							k, frac, ws, gs)
					}
				}
			}
		})
	}
}
