package mip

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"colarm/internal/bitset"
	"colarm/internal/charm"
	"colarm/internal/itemset"
	"colarm/internal/ittree"
	"colarm/internal/qerr"
	"colarm/internal/relation"
	"colarm/internal/rtree"
)

// The MIP-index is built offline once (the POQM contract), so persisting
// it is the natural deployment shape: mine with CHARM on a build
// machine, ship the snapshot, and serve queries anywhere. The snapshot
// stores the dataset, the closed frequent itemsets with their tidsets,
// and the MIP bounding boxes; the cheap derived structures (per-item
// tidsets, the packed R-tree, statistics) are rebuilt on load in
// milliseconds, skipping the mining phase entirely.

// snapshotMagic versions the serialization format. It is written as a
// standalone gob string ahead of the payload, so a reader rejects
// foreign files and other format versions from the first value alone —
// a typed qerr.ErrSnapshotVersion instead of a garbled payload decode.
//
// v2 moved the magic out of the payload struct and added engine-level
// metadata: the primary-support fraction, the engine generation, and
// the live-ingestion delta (buffered rows and deletes), so a snapshot
// taken mid-ingest restores to the exact same answers.
//
// v3 carries CFI tidsets in the hybrid container encoding (bitset v3)
// instead of dense words, so sparse and clustered tidsets persist
// compressed. The payload struct is unchanged — only the bytes inside
// each snapCFI.Tids differ — and the bitset decoder sniffs the
// per-tidset format, so v2 snapshots still load: their dense tidsets
// are converted to the hybrid representation on read.
//
// v4 is the sharded layout: when the index carries a Live mask (a
// consolidated sharded engine keeps deleted records as ghost rows so
// hash partitioning stays stable), the mask is appended as one extra
// gob value after the unchanged v3 payload. An index without ghosts —
// every fresh build, and every sharded engine that has absorbed no
// deletions, K=1 included — still writes the exact v3 stream, so v3
// readers round-trip those snapshots unchanged; only ghost-carrying
// snapshots get the v4 magic, which v3 readers reject with a typed
// version error instead of silently resurrecting deleted rows.
const snapshotMagic = "COLARM-MIP-v3"

// snapshotMagicV4 is the sharded ghost-mask format (see above).
const snapshotMagicV4 = "COLARM-MIP-v4"

// snapshotMagicV2 is the previous format, accepted read-only.
const snapshotMagicV2 = "COLARM-MIP-v2"

// SnapshotMeta is the engine-level state a snapshot carries alongside
// the index itself.
type SnapshotMeta struct {
	// Primary is the primary-support fraction the index was mined at;
	// the delta store re-mines merged views at this same fraction.
	Primary float64
	// Generation counts the engine's rebuilds since the original build.
	Generation uint64
	// DeltaRows are the buffered post-build inserts (value indices).
	DeltaRows [][]int32
	// DeltaDels are the deleted record ids (base or buffered id space).
	DeltaDels []int32
}

type snapshot struct {
	// Dataset.
	Name  string
	Attrs []snapAttr
	Rows  []int32 // row-major value indices, m*n entries

	// Index.
	PrimaryCount int
	Fanout       int
	Packing      int
	CFIs         []snapCFI
	Boxes        []snapBox

	Meta SnapshotMeta
}

type snapAttr struct {
	Name   string
	Values []string
}

type snapCFI struct {
	Items   []int32
	Tids    []byte // bitset.Set binary encoding
	Support int
}

type snapBox struct {
	Lo, Hi []int32
}

// WriteTo serializes the index with empty engine metadata. The stream
// is self-contained: ReadIndex restores a fully functional index
// without re-mining.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	return x.WriteSnapshot(w, SnapshotMeta{})
}

// WriteSnapshot serializes the index plus engine-level metadata (see
// SnapshotMeta); ReadSnapshot restores both.
func (x *Index) WriteSnapshot(w io.Writer, meta SnapshotMeta) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	snap := snapshot{
		Name:         x.Dataset.Name,
		PrimaryCount: x.PrimaryCount,
		Fanout:       x.RTree.Fanout(),
		Meta:         meta,
	}
	for _, a := range x.Dataset.Attrs {
		snap.Attrs = append(snap.Attrs, snapAttr{Name: a.Name, Values: a.Values})
	}
	m, n := x.Dataset.NumRecords(), x.Dataset.NumAttrs()
	snap.Rows = make([]int32, 0, m*n)
	for r := 0; r < m; r++ {
		for a := 0; a < n; a++ {
			snap.Rows = append(snap.Rows, int32(x.Dataset.Value(r, a)))
		}
	}
	for id := 0; id < x.ITTree.Size(); id++ {
		c := x.ITTree.Set(id)
		tids, err := c.Tids.MarshalBinary()
		if err != nil {
			return bw.n, err
		}
		items := make([]int32, len(c.Items))
		for i, it := range c.Items {
			items[i] = int32(it)
		}
		snap.CFIs = append(snap.CFIs, snapCFI{Items: items, Tids: tids, Support: c.Support})
		snap.Boxes = append(snap.Boxes, snapBox{Lo: x.Boxes[id].Lo, Hi: x.Boxes[id].Hi})
	}
	magic := snapshotMagic
	if x.Live != nil {
		magic = snapshotMagicV4
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(magic); err != nil {
		return bw.n, fmt.Errorf("mip: encoding snapshot magic: %w", err)
	}
	if err := enc.Encode(&snap); err != nil {
		return bw.n, fmt.Errorf("mip: encoding snapshot: %w", err)
	}
	if x.Live != nil {
		// The ghost mask rides after the unchanged v3 payload as its own
		// gob value, so the Live == nil stream stays byte-for-byte v3.
		live, err := x.Live.MarshalBinary()
		if err != nil {
			return bw.n, err
		}
		if err := enc.Encode(live); err != nil {
			return bw.n, fmt.Errorf("mip: encoding live mask: %w", err)
		}
	}
	if err := bw.w.(*bufio.Writer).Flush(); err != nil {
		return bw.n, err
	}
	return bw.n, nil
}

// ReadIndex restores an index written by WriteTo, rebuilding the
// derived structures (item tidsets, packed R-tree, statistics).
func ReadIndex(r io.Reader) (*Index, error) {
	idx, _, err := ReadSnapshot(r)
	return idx, err
}

// ReadSnapshot restores an index and its engine metadata. A stream that
// is not a snapshot of exactly this format version — an older or newer
// COLARM snapshot, or a foreign file — fails with
// qerr.ErrSnapshotVersion before any payload decoding.
func ReadSnapshot(r io.Reader) (*Index, SnapshotMeta, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var magic string
	if err := dec.Decode(&magic); err != nil {
		return nil, SnapshotMeta{}, fmt.Errorf("mip: %w: stream does not start with a snapshot version marker", qerr.ErrSnapshotVersion)
	}
	if magic != snapshotMagic && magic != snapshotMagicV4 && magic != snapshotMagicV2 {
		return nil, SnapshotMeta{}, fmt.Errorf("mip: %w: snapshot is %q, this build reads %q and %q (and %q read-only)", qerr.ErrSnapshotVersion, magic, snapshotMagicV4, snapshotMagic, snapshotMagicV2)
	}
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, SnapshotMeta{}, fmt.Errorf("mip: decoding snapshot: %w", err)
	}
	var live *bitset.Set
	if magic == snapshotMagicV4 {
		var raw []byte
		if err := dec.Decode(&raw); err != nil {
			return nil, SnapshotMeta{}, fmt.Errorf("mip: decoding live mask: %w", err)
		}
		live = &bitset.Set{}
		if err := live.UnmarshalBinary(raw); err != nil {
			return nil, SnapshotMeta{}, fmt.Errorf("mip: live mask: %w", err)
		}
	}
	idx, err := decodeSnapshot(&snap, live)
	if err != nil {
		return nil, SnapshotMeta{}, err
	}
	return idx, snap.Meta, nil
}

func decodeSnapshot(snap *snapshot, live *bitset.Set) (*Index, error) {
	if len(snap.Attrs) == 0 {
		return nil, fmt.Errorf("mip: snapshot has no attributes")
	}
	n := len(snap.Attrs)
	if len(snap.Rows)%n != 0 {
		return nil, fmt.Errorf("mip: snapshot row data length %d not divisible by %d attributes", len(snap.Rows), n)
	}
	names := make([]string, n)
	for i, a := range snap.Attrs {
		names[i] = a.Name
	}
	b := relation.NewBuilder(snap.Name, names...)
	for ai, a := range snap.Attrs {
		for _, v := range a.Values {
			b.AddValue(ai, v)
		}
	}
	row := make([]int, n)
	for off := 0; off < len(snap.Rows); off += n {
		for a := 0; a < n; a++ {
			row[a] = int(snap.Rows[off+a])
		}
		if err := b.AddRecordIdx(row...); err != nil {
			return nil, fmt.Errorf("mip: snapshot record: %w", err)
		}
	}
	d := b.Build()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	sp := itemset.NewSpace(d)

	if len(snap.CFIs) != len(snap.Boxes) {
		return nil, fmt.Errorf("mip: snapshot has %d CFIs but %d boxes", len(snap.CFIs), len(snap.Boxes))
	}
	res := &charm.Result{NumRecords: d.NumRecords(), MinCount: snap.PrimaryCount}
	boxes := make([]itemset.Box, len(snap.CFIs))
	for i, sc := range snap.CFIs {
		tids := &bitset.Set{}
		if err := tids.UnmarshalBinary(sc.Tids); err != nil {
			return nil, fmt.Errorf("mip: CFI %d tidset: %w", i, err)
		}
		if tids.Len() != d.NumRecords() {
			return nil, fmt.Errorf("mip: CFI %d tidset capacity %d != %d records", i, tids.Len(), d.NumRecords())
		}
		items := make(itemset.Set, len(sc.Items))
		for j, it := range sc.Items {
			if it < 0 || int(it) >= sp.NumItems() {
				return nil, fmt.Errorf("mip: CFI %d item %d out of range", i, it)
			}
			items[j] = itemset.Item(it)
		}
		if got := tids.Count(); got != sc.Support {
			return nil, fmt.Errorf("mip: CFI %d support %d != tidset count %d", i, sc.Support, got)
		}
		res.Closed = append(res.Closed, &charm.ClosedSet{Items: items, Tids: tids, Support: sc.Support})
		sb := snap.Boxes[i]
		if len(sb.Lo) != n || len(sb.Hi) != n {
			return nil, fmt.Errorf("mip: CFI %d box has wrong dimensionality", i)
		}
		boxes[i] = itemset.Box{Lo: sb.Lo, Hi: sb.Hi}
	}

	idx, err := assembleFromBoxes(d, sp, res, boxes, snap.PrimaryCount, Options{
		Fanout:  snap.Fanout,
		Packing: rtree.Packing(snap.Packing),
	})
	if err != nil {
		return nil, err
	}
	if live != nil {
		if live.Len() != d.NumRecords() {
			return nil, fmt.Errorf("mip: live mask capacity %d != %d records", live.Len(), d.NumRecords())
		}
		// The rebuilt per-item tidsets scanned the raw rows, ghosts
		// included; clear the ghost bits so every query surface covers
		// live records only, exactly as the consolidating engine left it.
		for _, t := range idx.Tidsets {
			t.And(live)
			t.Optimize()
		}
		idx.Live = live
	}
	return idx, nil
}

// assembleFromBoxes mirrors assemble but reuses precomputed boxes.
func assembleFromBoxes(d *relation.Dataset, sp *itemset.Space, res *charm.Result, boxes []itemset.Box, primaryCount int, opts Options) (*Index, error) {
	idx := &Index{
		Dataset:      d,
		Space:        sp,
		Tidsets:      itemset.ItemTidsets(d, sp),
		PrimaryCount: primaryCount,
		Boxes:        boxes,
	}
	idx.ITTree = ittree.Build(res, sp.NumItems())
	idx.Cards = make([]int, sp.NumAttrs())
	for a := range idx.Cards {
		idx.Cards[a] = sp.Cardinality(a)
	}
	entries := make([]rtree.Entry, len(res.Closed))
	for id, c := range res.Closed {
		entries[id] = rtree.Entry{Box: boxes[id], ID: int32(id), Support: int32(c.Support)}
	}
	rt, err := rtree.Bulk(entries, sp.NumAttrs(), opts.Fanout, opts.Packing, idx.Cards)
	if err != nil {
		return nil, err
	}
	idx.RTree = rt
	idx.LevelStats, idx.EntryStats = rt.Stats(idx.Cards)
	return idx, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
